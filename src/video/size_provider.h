// Chunk-size knowledge layer: what an ABR client believes chunks cost.
//
// Every size-aware scheme in this repo (CAVA's controllers, MPC's horizon
// search, BOLA's per-segment view, BBA-1, RBA, PANDA/CQ) reads the per-chunk
// segment size table straight from the manifest. Real deployments are not so
// lucky: plain DASH MPDs declare only average bitrates per representation
// (the paper needed a LoadSegmentSize dash.js extension to get real sizes),
// CDN-edge manifests carry stale or quantized tables, and live manifests are
// truncated at the edge. A ChunkSizeProvider models that knowledge gap: the
// *network* always moves the true bytes, but the *scheme* decides from the
// provider's estimate.
//
// Fallback ladder (most to least informed):
//   OracleSizeProvider          exact table — bit-for-bit today's behaviour
//   NoisySizeProvider           exact table with seeded multiplicative error
//   PartialSizeProvider         exact table with per-entry holes / truncation
//   DeclaredRateSizeProvider    avg_bitrate x duration, a plain MPD's view
// plus OnlineCorrectedSizeProvider, a decorator that refines any base
// estimate from observed actual download sizes (per-track EWMA).
//
// Determinism: Noisy/Partial draw from counter-based hashes keyed on
// (seed, track, chunk) — no mutable RNG state — so repeated queries for the
// same chunk agree (look-ahead searches query each entry many times) and a
// fixed seed reproduces the same knowledge faults across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "video/video.h"

namespace vbr::video {

/// What a scheme believes chunk (track, i) costs, in bits. Implementations
/// must return positive, finite estimates for every in-range query.
class ChunkSizeProvider {
 public:
  virtual ~ChunkSizeProvider() = default;

  /// Estimated size in bits of chunk `i` of track `level`.
  [[nodiscard]] virtual double size_bits(const Video& v, std::size_t level,
                                         std::size_t i) const = 0;

  /// Batch query: fills out[0 .. end-begin) with size_bits(v, level, i) for
  /// i in [begin, end). Semantically identical to the per-entry loop —
  /// providers are deterministic per (seed, track, chunk), so hoisting a
  /// look-ahead search's queries into one batch returns bit-identical
  /// values while paying one virtual dispatch per row instead of one per
  /// node visit. Overrides must preserve the per-entry values exactly.
  virtual void fill_size_bits(const Video& v, std::size_t level,
                              std::size_t begin, std::size_t end,
                              double* out) const {
    for (std::size_t i = begin; i < end; ++i) {
      out[i - begin] = size_bits(v, level, i);
    }
  }

  /// Informs the provider of the true delivered size of a chunk it may have
  /// estimated (decorators refine their model; base providers ignore it).
  virtual void on_actual_size(const Video& v, std::size_t level,
                              std::size_t i, double actual_bits) {
    (void)v;
    (void)level;
    (void)i;
    (void)actual_bits;
  }

  /// Clears any per-session learned state.
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exact per-chunk table, as if the manifest carried perfect segment sizes.
/// Byte-identical to reading Video::chunk_size_bits directly.
class OracleSizeProvider final : public ChunkSizeProvider {
 public:
  [[nodiscard]] double size_bits(const Video& v, std::size_t level,
                                 std::size_t i) const override;
  /// Straight copy out of the manifest table (same values, same
  /// std::out_of_range on a bad index, no per-entry virtual dispatch).
  void fill_size_bits(const Video& v, std::size_t level, std::size_t begin,
                      std::size_t end, double* out) const override;
  [[nodiscard]] std::string name() const override { return "oracle"; }
};

/// What a plain (size-table-less) MPD gives: the track's declared average
/// bitrate times the chunk duration. Systematically wrong for VBR — exactly
/// the failure mode the paper's Section 4 warns about.
class DeclaredRateSizeProvider final : public ChunkSizeProvider {
 public:
  [[nodiscard]] double size_bits(const Video& v, std::size_t level,
                                 std::size_t i) const override;
  [[nodiscard]] std::string name() const override { return "declared-rate"; }
};

/// Exact table perturbed by seeded multiplicative error: the estimate is
/// true_size * U(1 - err, 1 + err), drawn deterministically per (track,
/// chunk). Models stale or quantized size tables (the size-domain analogue
/// of net::NoisyOracleEstimator).
class NoisySizeProvider final : public ChunkSizeProvider {
 public:
  /// @param err   relative error bound in [0, 1)
  /// @param seed  deterministic knowledge-fault seed
  NoisySizeProvider(double err, std::uint64_t seed);

  [[nodiscard]] double size_bits(const Video& v, std::size_t level,
                                 std::size_t i) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double err_;
  std::uint64_t seed_;
};

/// Exact table with holes: each (track, chunk) entry is independently
/// missing with probability `miss_rate` (lazily-fetched or corrupt table
/// rows), and every entry at index >= `known_prefix_chunks` is missing
/// (truncated table). Holes fall back to the declared-rate estimate.
class PartialSizeProvider final : public ChunkSizeProvider {
 public:
  static constexpr std::size_t kNoPrefixLimit =
      std::numeric_limits<std::size_t>::max();

  /// @param miss_rate            per-entry hole probability in [0, 1]
  /// @param seed                 deterministic hole-pattern seed
  /// @param known_prefix_chunks  table truncation point (kNoPrefixLimit =
  ///                             untruncated)
  PartialSizeProvider(double miss_rate, std::uint64_t seed,
                      std::size_t known_prefix_chunks = kNoPrefixLimit);

  [[nodiscard]] double size_bits(const Video& v, std::size_t level,
                                 std::size_t i) const override;
  /// True if the table has a real entry for (level, i) under this pattern.
  [[nodiscard]] bool knows(std::size_t level, std::size_t i) const;
  [[nodiscard]] std::string name() const override;

 private:
  double miss_rate_;
  std::uint64_t seed_;
  std::size_t known_prefix_chunks_;
};

/// Decorator: refines any base provider's estimates from observed actual
/// download sizes. Keeps one EWMA correction ratio per track (actual /
/// estimated) and scales the base estimate by it — so a client stuck with
/// declared average rates converges toward each track's realized cost.
class OnlineCorrectedSizeProvider final : public ChunkSizeProvider {
 public:
  /// @param base   the estimate source being corrected (owned)
  /// @param alpha  EWMA weight of the newest observation, in (0, 1]
  OnlineCorrectedSizeProvider(std::unique_ptr<ChunkSizeProvider> base,
                              double alpha = 0.3);

  [[nodiscard]] double size_bits(const Video& v, std::size_t level,
                                 std::size_t i) const override;
  void on_actual_size(const Video& v, std::size_t level, std::size_t i,
                      double actual_bits) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// Current correction ratio for `level` (1.0 until observations arrive).
  [[nodiscard]] double correction(std::size_t level) const;

 private:
  std::unique_ptr<ChunkSizeProvider> base_;
  double alpha_;
  std::vector<double> correction_;  ///< Per-track EWMA of actual/estimated.
};

/// Named knowledge modes, for CLI flags and sweep benches.
enum class SizeKnowledge { kOracle, kDeclared, kNoisy, kPartial };

[[nodiscard]] std::string to_string(SizeKnowledge k);

/// Parses "oracle" | "declared" | "noisy" | "partial"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] SizeKnowledge size_knowledge_from_string(const std::string& s);

/// One-stop configuration for building a provider stack.
struct SizeKnowledgeConfig {
  SizeKnowledge mode = SizeKnowledge::kOracle;
  double noise_err = 0.25;       ///< kNoisy: relative error bound, [0, 1).
  double miss_rate = 0.25;       ///< kPartial: per-entry hole probability.
  /// kPartial: table truncation point; 0 = untruncated.
  std::size_t known_prefix_chunks = 0;
  bool online_correction = false;  ///< Wrap with OnlineCorrectedSizeProvider.
  double correction_alpha = 0.3;   ///< EWMA weight, (0, 1].
  std::uint64_t seed = 1;          ///< Deterministic knowledge-fault seed.

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

/// Builds the provider stack described by `config` (validating it first).
[[nodiscard]] std::unique_ptr<ChunkSizeProvider> make_size_provider(
    const SizeKnowledgeConfig& config);

}  // namespace vbr::video
