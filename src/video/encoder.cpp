#include "video/encoder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace vbr::video {

namespace {

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// How much of the content's natural bitrate variability a track at this
/// average bitrate can express. Low-bitrate rungs are pinned near their
/// average (the paper: "the low bitrate limits the amount of variability").
double variability_damping(double average_bitrate_bps) {
  const double x = average_bitrate_bps / 600000.0;  // ~600 kbps knee
  return std::clamp(std::pow(std::min(x, 1.0), 0.4), 0.2, 1.0);
}

}  // namespace

double target_bpp(const Resolution& r) {
  if (r.height <= 144) return 0.230;
  if (r.height <= 240) return 0.175;
  if (r.height <= 360) return 0.150;
  if (r.height <= 480) return 0.135;
  if (r.height <= 720) return 0.115;
  return 0.100;
}

double codec_efficiency(Codec c) {
  switch (c) {
    case Codec::kH264:
      return 1.0;
    case Codec::kH265:
      return 0.62;  // HEVC: same quality at ~62% of the H.264 bitrate.
  }
  return 1.0;
}

std::vector<double> relative_allocation(const std::vector<SceneChunk>& scene,
                                        double average_bitrate_bps,
                                        double cap_factor,
                                        const QualityModelParams& quality) {
  if (scene.empty()) {
    throw std::invalid_argument("relative_allocation: empty scene trace");
  }
  if (cap_factor <= 1.0) {
    throw std::invalid_argument("relative_allocation: cap_factor must be > 1");
  }

  // Pass 1: CRF allocation weights.
  std::vector<double> rel(scene.size());
  for (std::size_t i = 0; i < scene.size(); ++i) {
    rel[i] = crf_weight(scene[i].complexity, quality);
  }
  const double mean_w = mean_of(rel);
  for (double& r : rel) {
    r /= mean_w;
  }

  // Pass 2: damp variability at low average bitrates.
  const double v = variability_damping(average_bitrate_bps);
  for (double& r : rel) {
    r = 1.0 + v * (r - 1.0);
  }

  // Pass 3: soft cap at cap_factor x average. A fraction of the excess leaks
  // through, so peaks can slightly exceed the configured cap (observed for
  // FFmpeg -maxrate encodes in the paper).
  constexpr double kOvershootLeak = 0.15;
  for (double& r : rel) {
    if (r > cap_factor) {
      r = cap_factor + kOvershootLeak * (r - cap_factor);
    }
  }

  // Renormalize so the track's average bitrate hits the target (two-pass
  // encoders converge on the requested average).
  const double m = mean_of(rel);
  for (double& r : rel) {
    r /= m;
  }
  return rel;
}

Track encode_track(const std::vector<SceneChunk>& scene, int level,
                   const EncoderConfig& config) {
  if (scene.empty()) {
    throw std::invalid_argument("encode_track: empty scene trace");
  }
  if (config.chunk_duration_s <= 0.0 || config.fps <= 0.0) {
    throw std::invalid_argument("encode_track: non-positive duration or fps");
  }
  if (config.resolution.pixels() <= 0) {
    throw std::invalid_argument("encode_track: empty resolution");
  }

  const double pixels = static_cast<double>(config.resolution.pixels());
  // CRF scaling: every +6 CRF halves the bit budget (x264/x265 convention);
  // CRF 25 is the unit point.
  const double crf_scale = std::pow(2.0, (25.0 - config.crf) / 6.0);
  const double codec = codec_efficiency(config.codec);

  // Per-title average: the content's mean CRF weight times the rung's bpp
  // target. Complex titles naturally get higher averages.
  double mean_w = 0.0;
  for (const SceneChunk& sc : scene) {
    mean_w += crf_weight(sc.complexity, config.quality);
  }
  mean_w /= static_cast<double>(scene.size());
  const double avg_bitrate_bps = target_bpp(config.resolution) * pixels *
                                 config.fps * mean_w * codec * crf_scale;
  const double avg_bits_per_chunk = avg_bitrate_bps * config.chunk_duration_s;

  std::vector<double> rel;
  if (config.rate_control == RateControl::kCbr) {
    // CBR: every chunk gets the average budget; only a small residual
    // variation survives the rate controller's lookahead buffer.
    rel.resize(scene.size());
    for (std::size_t i = 0; i < scene.size(); ++i) {
      const double w = crf_weight(scene[i].complexity, config.quality);
      rel[i] = 1.0 + 0.04 * (w / crf_weight(0.5, config.quality) - 1.0);
    }
  } else {
    rel = relative_allocation(scene, avg_bitrate_bps, config.cap_factor,
                              config.quality);
  }

  std::mt19937_64 rng(config.noise_seed);
  std::normal_distribution<double> quality_noise(0.0, 1.5);

  std::vector<Chunk> chunks;
  chunks.reserve(scene.size());
  for (std::size_t i = 0; i < scene.size(); ++i) {
    Chunk c;
    c.duration_s = config.chunk_duration_s;
    c.size_bits = avg_bits_per_chunk * rel[i];

    // Quality: the allocation ratio is measured in quality-equivalent bpp
    // weights, so the codec and bpp scaling cancel; what matters is how the
    // realized allocation compares with the content's true need at this
    // quality ambition (CRF).
    const double allocated_w = mean_w * rel[i] * crf_scale;
    const double needed_w = need_weight(scene[i].complexity, config.quality);
    c.quality =
        score_chunk(allocated_w, needed_w, scene[i].complexity,
                    config.resolution, quality_noise(rng), config.quality);
    chunks.push_back(c);
  }
  return Track(level, config.resolution, config.codec, std::move(chunks));
}

}  // namespace vbr::video
