#include "video/track.h"

#include <array>
#include <cmath>

namespace vbr::video {

std::string to_string(Codec c) {
  switch (c) {
    case Codec::kH264:
      return "H.264";
    case Codec::kH265:
      return "H.265";
  }
  return "unknown";
}

std::string Resolution::label() const { return std::to_string(height) + "p"; }

std::span<const Resolution> standard_ladder() {
  static constexpr std::array<Resolution, 6> kLadder = {
      kLadder144p, kLadder240p, kLadder360p,
      kLadder480p, kLadder720p, kLadder1080p};
  return kLadder;
}

Track::Track(int level, Resolution resolution, Codec codec,
             std::vector<Chunk> chunks)
    : level_(level),
      resolution_(resolution),
      codec_(codec),
      chunks_(std::move(chunks)) {
  if (chunks_.empty()) {
    throw std::invalid_argument("Track: no chunks");
  }
  if (level_ < 0) {
    throw std::invalid_argument("Track: negative level");
  }
  for (const Chunk& c : chunks_) {
    // NaN compares false against <= 0, so finiteness needs its own check.
    if (!std::isfinite(c.size_bits) || c.size_bits <= 0.0 ||
        !std::isfinite(c.duration_s) || c.duration_s <= 0.0) {
      throw std::invalid_argument(
          "Track: chunk with non-finite or non-positive size or duration");
    }
    total_bits_ += c.size_bits;
    total_duration_s_ += c.duration_s;
    peak_bitrate_bps_ = std::max(peak_bitrate_bps_, c.bitrate_bps());
  }
  avg_bitrate_bps_ = total_bits_ / total_duration_s_;
}

std::vector<double> Track::chunk_bitrates_bps() const {
  std::vector<double> v;
  v.reserve(chunks_.size());
  for (const Chunk& c : chunks_) {
    v.push_back(c.bitrate_bps());
  }
  return v;
}

std::vector<double> Track::chunk_sizes_bits() const {
  std::vector<double> v;
  v.reserve(chunks_.size());
  for (const Chunk& c : chunks_) {
    v.push_back(c.size_bits);
  }
  return v;
}

}  // namespace vbr::video
