#include "video/video.h"

namespace vbr::video {

std::string to_string(Genre g) {
  switch (g) {
    case Genre::kAnimation:
      return "animation";
    case Genre::kSciFi:
      return "scifi";
    case Genre::kSports:
      return "sports";
    case Genre::kAnimal:
      return "animal";
    case Genre::kNature:
      return "nature";
    case Genre::kAction:
      return "action";
  }
  return "unknown";
}

Video::Video(std::string name, Genre genre, std::vector<Track> tracks,
             std::vector<SceneInfo> scene_info)
    : name_(std::move(name)),
      genre_(genre),
      tracks_(std::move(tracks)),
      scene_info_(std::move(scene_info)) {
  if (tracks_.empty()) {
    throw std::invalid_argument("Video: no tracks");
  }
  const std::size_t n = tracks_.front().num_chunks();
  for (const Track& t : tracks_) {
    if (t.num_chunks() != n) {
      throw std::invalid_argument("Video: tracks disagree on chunk count");
    }
  }
  for (std::size_t l = 1; l < tracks_.size(); ++l) {
    if (tracks_[l].average_bitrate_bps() <=
        tracks_[l - 1].average_bitrate_bps()) {
      throw std::invalid_argument(
          "Video: tracks must be in ascending average-bitrate order");
    }
  }
  if (scene_info_.size() != n) {
    throw std::invalid_argument("Video: scene_info size mismatch");
  }
}

}  // namespace vbr::video
