#include "video/quality_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::video {

namespace {

double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

double crf_weight(double complexity, const QualityModelParams& p) {
  if (complexity <= 0.0 || complexity > 1.0) {
    throw std::invalid_argument("crf_weight: complexity out of (0, 1]");
  }
  return p.crf_base + p.crf_gain * std::pow(complexity, p.crf_exp);
}

double need_weight(double complexity, const QualityModelParams& p) {
  if (complexity <= 0.0 || complexity > 1.0) {
    throw std::invalid_argument("need_weight: complexity out of (0, 1]");
  }
  return p.need_base + p.need_gain * std::pow(complexity, p.need_exp);
}

double rate_score(double allocated_weight, double needed_weight,
                  const QualityModelParams& p) {
  if (allocated_weight <= 0.0 || needed_weight <= 0.0) {
    throw std::invalid_argument("rate_score: non-positive weight");
  }
  const double ratio = allocated_weight / needed_weight;
  return logistic((std::log2(ratio) - p.rate_mid_log2) / p.rate_slope_log2);
}

double vmaf_cap_tv(const Resolution& r) {
  // Upscaling to a large display penalizes low resolutions heavily.
  if (r.height <= 144) return 30.0;
  if (r.height <= 240) return 45.0;
  if (r.height <= 360) return 62.0;
  if (r.height <= 480) return 78.0;
  if (r.height <= 720) return 91.0;
  return 98.0;
}

double vmaf_cap_phone(const Resolution& r) {
  // Small screens mask upscaling artifacts; caps are uniformly higher.
  if (r.height <= 144) return 38.0;
  if (r.height <= 240) return 56.0;
  if (r.height <= 360) return 74.0;
  if (r.height <= 480) return 88.0;
  if (r.height <= 720) return 95.0;
  return 99.0;
}

ChunkQuality score_chunk(double allocated_weight, double needed_weight,
                         double complexity, const Resolution& resolution,
                         double noise, const QualityModelParams& p) {
  const double s = rate_score(allocated_weight, needed_weight, p);

  ChunkQuality q;
  q.vmaf_tv = std::clamp(vmaf_cap_tv(resolution) * s + noise, 0.0, 100.0);
  q.vmaf_phone =
      std::clamp(vmaf_cap_phone(resolution) * s + noise, 0.0, 100.0);
  // PSNR tracks the rate score but complex content additionally loses
  // fidelity through motion; typical streaming range is ~25-50 dB.
  q.psnr_db = std::clamp(25.0 + 24.0 * s - 3.0 * complexity + 0.1 * noise,
                         20.0, 55.0);
  // SSIM saturates quickly; typical range ~0.7-1.0.
  q.ssim = std::clamp(0.70 + 0.30 * s - 0.04 * complexity + 0.002 * noise,
                      0.0, 1.0);
  return q;
}

}  // namespace vbr::video
