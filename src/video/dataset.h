// The 16-video evaluation corpus (paper Section 2), built synthetically.
//
// - 8 "FFmpeg-style" encodes: the four open titles (Elephant Dream, Big Buck
//   Bunny, Tears of Steel, Sintel) in H.264 and H.265, 2-second chunks,
//   2x-capped VBR, per-title three-pass procedure.
// - 8 "YouTube-style" encodes: the same four titles plus four downloaded
//   genres (sports, animal, nature, action), H.264, 5-second chunks.
// - One extra 4x-capped Elephant Dream encode for Sections 3.3 / 6.6.
//
// Each video is ~10 minutes and carries the six-rung 144p-1080p ladder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "video/video.h"

namespace vbr::video {

/// Corpus-wide configuration.
struct DatasetConfig {
  std::uint64_t seed = 42;    ///< Master seed; everything derives from it.
  double duration_s = 600.0;  ///< Title length (paper: ~10 minutes).
};

/// Builds one synthetic ABR video with the standard six-track ladder.
///
/// @param name             title identifier (recorded on the video)
/// @param genre            drives the scene-complexity statistics
/// @param codec            H.264 or H.265
/// @param chunk_duration_s 2 s (FFmpeg-style) or 5 s (YouTube-style)
/// @param cap_factor       peak-to-average cap (2x default, 4x variant)
/// @param seed             content seed; same seed = same scene trace
/// @param duration_s       total length in seconds
[[nodiscard]] Video make_video(const std::string& name, Genre genre,
                               Codec codec, double chunk_duration_s,
                               double cap_factor, std::uint64_t seed,
                               double duration_s = 600.0);

/// The 8 FFmpeg-style encodes (4 titles x {H.264, H.265}, 2 s chunks).
[[nodiscard]] std::vector<Video> make_ffmpeg_corpus(
    const DatasetConfig& cfg = {});

/// The 8 YouTube-style encodes (8 titles, H.264, 5 s chunks).
[[nodiscard]] std::vector<Video> make_youtube_corpus(
    const DatasetConfig& cfg = {});

/// All 16 videos: FFmpeg corpus followed by YouTube corpus.
[[nodiscard]] std::vector<Video> make_full_corpus(
    const DatasetConfig& cfg = {});

/// The 4x-capped Elephant Dream encode (FFmpeg-style, H.264) used in
/// Sections 3.3 and 6.6.
[[nodiscard]] Video make_4x_capped_video(const DatasetConfig& cfg = {});

/// A CBR encode of the same content (same average bitrates, constant
/// per-chunk budget) — the traditional alternative the paper's introduction
/// contrasts VBR against. Used by bench_intro_cbr_vs_vbr.
[[nodiscard]] Video make_cbr_video(const std::string& name, Genre genre,
                                   Codec codec, double chunk_duration_s,
                                   std::uint64_t seed,
                                   double duration_s = 600.0);

/// Convenience: find a corpus video by name. Throws std::out_of_range if
/// absent.
[[nodiscard]] const Video& find_video(const std::vector<Video>& corpus,
                                      const std::string& name);

}  // namespace vbr::video
