// Synthetic capped-VBR encoder.
//
// Reproduces the paper's per-title "three-pass" encoding procedure (Netflix
// recipe, Section 2) as a statistical model:
//
//   pass 1 (CRF): each chunk gets bits proportional to a constant-rate-factor
//     allocation weight w(c) of its scene complexity; the track's average
//     bitrate emerges from the content (per-title encoding).
//   pass 2+3 (two-pass capped VBR): per-chunk allocations are smoothed toward
//     the average at low bitrates (low tracks cannot express much
//     variability), soft-capped at cap_factor x average (slight overshoot is
//     allowed, as the paper observes for -maxrate/-bufsize encodes), and
//     renormalized so the track hits its target average.
//
// Quality of each resulting chunk is scored by the rate-distortion model in
// quality_model.h.
#pragma once

#include <cstdint>
#include <vector>

#include "video/quality_model.h"
#include "video/scene_model.h"
#include "video/track.h"

namespace vbr::video {

/// Rate-control mode: capped VBR (the paper's subject) or plain CBR (the
/// intro's traditional alternative: same bit budget for simple and complex
/// scenes, hence variable quality).
enum class RateControl { kCappedVbr, kCbr };

/// Encoder configuration for one track.
struct EncoderConfig {
  Resolution resolution;
  Codec codec = Codec::kH264;
  RateControl rate_control = RateControl::kCappedVbr;
  double chunk_duration_s = 2.0;
  /// Peak-to-average bitrate cap (2.0 = the HLS-recommended 2x cap; the
  /// paper also studies 4x).
  double cap_factor = 2.0;
  /// Constant rate factor; 25 is the paper's setting. Each +6 CRF halves the
  /// bit budget (x264/x265 convention).
  double crf = 25.0;
  double fps = 24.0;
  /// Deterministic seed for frame-level quality measurement noise.
  std::uint64_t noise_seed = 0;
  QualityModelParams quality;
};

/// Target bits-per-pixel at CRF 25 for a resolution rung (H.264). Lower
/// resolutions are encoded at a higher bpp, matching practical ladders.
[[nodiscard]] double target_bpp(const Resolution& r);

/// Bitrate multiplier for a codec relative to H.264 at equal quality.
[[nodiscard]] double codec_efficiency(Codec c);

/// Encodes one track from a scene trace. `level` is the rung index recorded
/// on the track. Throws std::invalid_argument on empty trace or invalid
/// config.
[[nodiscard]] Track encode_track(const std::vector<SceneChunk>& scene,
                                 int level, const EncoderConfig& config);

/// Per-chunk relative allocation (mean 1) after damping, capping and
/// renormalization — exposed for tests of the encoding pipeline invariants.
[[nodiscard]] std::vector<double> relative_allocation(
    const std::vector<SceneChunk>& scene, double average_bitrate_bps,
    double cap_factor, const QualityModelParams& quality);

}  // namespace vbr::video
