// A track (also called a level or representation): one complete encoding of
// the video at a fixed resolution, split into chunks.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "video/chunk.h"

namespace vbr::video {

/// Video codec used for a track. H.265 reaches the same quality at a
/// substantially lower bitrate than H.264.
enum class Codec { kH264, kH265 };

[[nodiscard]] std::string to_string(Codec c);

/// Spatial resolution of a track.
struct Resolution {
  int width = 0;
  int height = 0;

  [[nodiscard]] long long pixels() const {
    return static_cast<long long>(width) * height;
  }
  [[nodiscard]] std::string label() const;  ///< e.g. "1080p"

  friend bool operator==(const Resolution&, const Resolution&) = default;
};

/// The standard six-rung resolution ladder used throughout the paper.
inline constexpr Resolution kLadder144p{256, 144};
inline constexpr Resolution kLadder240p{426, 240};
inline constexpr Resolution kLadder360p{640, 360};
inline constexpr Resolution kLadder480p{854, 480};
inline constexpr Resolution kLadder720p{1280, 720};
inline constexpr Resolution kLadder1080p{1920, 1080};

[[nodiscard]] std::span<const Resolution> standard_ladder();

/// One encoded rendition of the video.
class Track {
 public:
  /// Constructs a track; throws std::invalid_argument if chunks is empty or
  /// any chunk has a non-finite or non-positive size/duration.
  Track(int level, Resolution resolution, Codec codec,
        std::vector<Chunk> chunks);

  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] const Resolution& resolution() const { return resolution_; }
  [[nodiscard]] Codec codec() const { return codec_; }

  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] const Chunk& chunk(std::size_t i) const {
    return chunks_.at(i);
  }
  [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }

  /// Average bitrate over the whole track: total bits / total duration.
  [[nodiscard]] double average_bitrate_bps() const { return avg_bitrate_bps_; }

  /// Largest per-chunk bitrate in the track.
  [[nodiscard]] double peak_bitrate_bps() const { return peak_bitrate_bps_; }

  /// Peak-to-average bitrate ratio, the "cap factor" realized by the encode.
  [[nodiscard]] double peak_to_average() const {
    return peak_bitrate_bps_ / avg_bitrate_bps_;
  }

  /// Total duration of the track in seconds.
  [[nodiscard]] double duration_s() const { return total_duration_s_; }

  /// Total size of the track in bits.
  [[nodiscard]] double total_bits() const { return total_bits_; }

  /// Per-chunk bitrates (bps), convenient for statistics.
  [[nodiscard]] std::vector<double> chunk_bitrates_bps() const;

  /// Per-chunk sizes (bits).
  [[nodiscard]] std::vector<double> chunk_sizes_bits() const;

 private:
  int level_;
  Resolution resolution_;
  Codec codec_;
  std::vector<Chunk> chunks_;
  double avg_bitrate_bps_ = 0.0;
  double peak_bitrate_bps_ = 0.0;
  double total_duration_s_ = 0.0;
  double total_bits_ = 0.0;
};

}  // namespace vbr::video
