// Rate–distortion quality model.
//
// Substitutes for offline PSNR/SSIM/VMAF computation against reference
// footage. The model scores an encoded chunk from three inputs: the bits the
// encoder allocated, the bits the content *needs* for transparent quality at
// its scene complexity, and the track resolution (upscaling to the display
// caps the achievable score; the phone model is more forgiving of low
// resolutions than the TV model, as in Netflix's VMAF).
//
// The paper's central characterization — complex (Q4) chunks receive more
// bits yet score lower than simpler chunks in the same track (Section 3.1.2)
// — is emergent: the constant-rate-factor allocation grows linearly with
// complexity while the true need grows superlinearly, and the VBR cap clips
// precisely the chunks that need the most.
#pragma once

#include "video/chunk.h"
#include "video/track.h"

namespace vbr::video {

/// Rate–distortion model parameters. Defaults are tuned so the synthetic
/// corpus reproduces the quality ranges in the paper (Fig. 3, Section 3.3).
struct QualityModelParams {
  /// Logistic rate-score midpoint in log2(allocation ratio).
  double rate_mid_log2 = -0.5;
  /// Logistic rate-score slope (larger = softer RD knee).
  double rate_slope_log2 = 0.2;
  /// First-pass (CRF) allocation weight:
  ///   w(c) = crf_base + crf_gain * c^crf_exp.
  /// The heavy tail makes complex bursts press against the VBR cap.
  double crf_base = 0.12;
  double crf_gain = 1.9;
  double crf_exp = 1.5;
  /// True constant-quality need: n(c) = need_base + need_gain * c^need_exp.
  /// Need grows faster than the CRF allocation, so complex scenes end up
  /// under-provisioned — the paper's Section 3.1.2 observation.
  double need_base = 0.10;
  double need_gain = 2.6;
  double need_exp = 2.2;
};

/// Rate score in (0, 1): the fraction of the resolution-capped quality
/// achieved when `allocated_weight` bits-per-pixel-weight are spent on
/// content whose constant-quality need is `needed_weight`.
[[nodiscard]] double rate_score(double allocated_weight, double needed_weight,
                                const QualityModelParams& p = {});

/// First-pass CRF allocation weight w(c) for complexity c in (0, 1].
[[nodiscard]] double crf_weight(double complexity,
                                const QualityModelParams& p = {});

/// Constant-quality bit need n(c) for complexity c in (0, 1].
[[nodiscard]] double need_weight(double complexity,
                                 const QualityModelParams& p = {});

/// Maximum achievable VMAF for a resolution under the TV viewing model
/// (content upscaled to a large screen).
[[nodiscard]] double vmaf_cap_tv(const Resolution& r);

/// Maximum achievable VMAF for a resolution under the phone viewing model.
[[nodiscard]] double vmaf_cap_phone(const Resolution& r);

/// Scores one chunk. `noise` is an additive perturbation (in VMAF points)
/// supplied by the encoder's deterministic RNG to model frame-level
/// measurement spread; pass 0 for the noiseless model.
[[nodiscard]] ChunkQuality score_chunk(double allocated_weight,
                                       double needed_weight,
                                       double complexity,
                                       const Resolution& resolution,
                                       double noise = 0.0,
                                       const QualityModelParams& p = {});

}  // namespace vbr::video
