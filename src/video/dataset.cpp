#include "video/dataset.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "video/encoder.h"
#include "video/scene_model.h"

namespace vbr::video {

namespace {

struct TitleSpec {
  const char* name;
  Genre genre;
  std::uint64_t content_salt;  ///< Distinguishes titles under one master seed.
};

// The four open titles encoded with FFmpeg in the paper.
constexpr std::array<TitleSpec, 4> kOpenTitles = {{
    {"ED", Genre::kAnimation, 0x11},
    {"BBB", Genre::kAnimation, 0x22},
    {"ToS", Genre::kSciFi, 0x33},
    {"Sintel", Genre::kSciFi, 0x44},
}};

// The four additional YouTube downloads.
constexpr std::array<TitleSpec, 4> kYoutubeOnlyTitles = {{
    {"Sports", Genre::kSports, 0x55},
    {"Animal", Genre::kAnimal, 0x66},
    {"Nature", Genre::kNature, 0x77},
    {"Action", Genre::kAction, 0x88},
}};

std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  // splitmix64 finalizer over seed ^ salt: decorrelates derived streams.
  std::uint64_t z = (seed ^ salt) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Video make_video(const std::string& name, Genre genre, Codec codec,
                 double chunk_duration_s, double cap_factor,
                 std::uint64_t seed, double duration_s) {
  if (chunk_duration_s <= 0.0 || duration_s < chunk_duration_s) {
    throw std::invalid_argument("make_video: bad durations");
  }
  const auto num_chunks =
      static_cast<std::size_t>(std::floor(duration_s / chunk_duration_s));
  const std::vector<SceneChunk> scene =
      generate_scene_trace(genre, num_chunks, mix(seed, 0x5CE17EULL));

  std::vector<Track> tracks;
  tracks.reserve(standard_ladder().size());
  int level = 0;
  for (const Resolution& res : standard_ladder()) {
    EncoderConfig cfg;
    cfg.resolution = res;
    cfg.codec = codec;
    cfg.chunk_duration_s = chunk_duration_s;
    cfg.cap_factor = cap_factor;
    cfg.noise_seed = mix(seed, 0x1000 + static_cast<std::uint64_t>(level));
    tracks.push_back(encode_track(scene, level, cfg));
    ++level;
  }

  std::vector<SceneInfo> infos;
  infos.reserve(scene.size());
  for (const SceneChunk& sc : scene) {
    infos.push_back(sc.info);
  }
  return Video(name, genre, std::move(tracks), std::move(infos));
}

std::vector<Video> make_ffmpeg_corpus(const DatasetConfig& cfg) {
  std::vector<Video> corpus;
  corpus.reserve(8);
  for (const Codec codec : {Codec::kH264, Codec::kH265}) {
    for (const TitleSpec& t : kOpenTitles) {
      const std::string name = std::string(t.name) + "-ffmpeg-" +
                               (codec == Codec::kH264 ? "h264" : "h265");
      corpus.push_back(make_video(name, t.genre, codec,
                                  /*chunk_duration_s=*/2.0,
                                  /*cap_factor=*/2.0,
                                  mix(cfg.seed, t.content_salt),
                                  cfg.duration_s));
    }
  }
  return corpus;
}

std::vector<Video> make_youtube_corpus(const DatasetConfig& cfg) {
  std::vector<Video> corpus;
  corpus.reserve(8);
  for (const TitleSpec& t : kOpenTitles) {
    corpus.push_back(make_video(std::string(t.name) + "-yt", t.genre,
                                Codec::kH264, /*chunk_duration_s=*/5.0,
                                /*cap_factor=*/2.0,
                                mix(cfg.seed, t.content_salt),
                                cfg.duration_s));
  }
  for (const TitleSpec& t : kYoutubeOnlyTitles) {
    corpus.push_back(make_video(std::string(t.name) + "-yt", t.genre,
                                Codec::kH264, /*chunk_duration_s=*/5.0,
                                /*cap_factor=*/2.0,
                                mix(cfg.seed, t.content_salt),
                                cfg.duration_s));
  }
  return corpus;
}

std::vector<Video> make_full_corpus(const DatasetConfig& cfg) {
  std::vector<Video> corpus = make_ffmpeg_corpus(cfg);
  std::vector<Video> yt = make_youtube_corpus(cfg);
  for (Video& v : yt) {
    corpus.push_back(std::move(v));
  }
  return corpus;
}

Video make_cbr_video(const std::string& name, Genre genre, Codec codec,
                     double chunk_duration_s, std::uint64_t seed,
                     double duration_s) {
  if (chunk_duration_s <= 0.0 || duration_s < chunk_duration_s) {
    throw std::invalid_argument("make_cbr_video: bad durations");
  }
  const auto num_chunks =
      static_cast<std::size_t>(std::floor(duration_s / chunk_duration_s));
  const std::vector<SceneChunk> scene =
      generate_scene_trace(genre, num_chunks, mix(seed, 0x5CE17EULL));

  std::vector<Track> tracks;
  tracks.reserve(standard_ladder().size());
  int level = 0;
  for (const Resolution& res : standard_ladder()) {
    EncoderConfig ec;
    ec.resolution = res;
    ec.codec = codec;
    ec.rate_control = RateControl::kCbr;
    ec.chunk_duration_s = chunk_duration_s;
    ec.noise_seed = mix(seed, 0x2000 + static_cast<std::uint64_t>(level));
    tracks.push_back(encode_track(scene, level, ec));
    ++level;
  }
  std::vector<SceneInfo> infos;
  infos.reserve(scene.size());
  for (const SceneChunk& sc : scene) {
    infos.push_back(sc.info);
  }
  return Video(name, genre, std::move(tracks), std::move(infos));
}

Video make_4x_capped_video(const DatasetConfig& cfg) {
  return make_video("ED-ffmpeg-h264-4x", Genre::kAnimation, Codec::kH264,
                    /*chunk_duration_s=*/2.0, /*cap_factor=*/4.0,
                    mix(cfg.seed, kOpenTitles[0].content_salt),
                    cfg.duration_s);
}

const Video& find_video(const std::vector<Video>& corpus,
                        const std::string& name) {
  for (const Video& v : corpus) {
    if (v.name() == name) {
      return v;
    }
  }
  throw std::out_of_range("find_video: no video named " + name);
}

}  // namespace vbr::video
