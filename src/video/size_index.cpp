#include "video/size_index.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vbr::video {

SizeIndex::SizeIndex(const Video& video) : num_chunks_(video.num_chunks()) {
  const std::size_t tracks = video.num_tracks();
  prefix_.resize(tracks);
  min_prefix_.assign(num_chunks_ + 1, 0.0);
  for (std::size_t l = 0; l < tracks; ++l) {
    std::vector<double>& row = prefix_[l];
    row.assign(num_chunks_ + 1, 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < num_chunks_; ++i) {
      // Left-to-right accumulation: prefix sums stay bit-identical to the
      // naive loops they replace.
      acc += video.chunk_size_bits(l, i);
      row[i + 1] = acc;
    }
  }
  double min_acc = 0.0;
  for (std::size_t i = 0; i < num_chunks_; ++i) {
    double m = video.chunk_size_bits(0, i);
    for (std::size_t l = 1; l < tracks; ++l) {
      m = std::min(m, video.chunk_size_bits(l, i));
    }
    min_acc += m;
    min_prefix_[i + 1] = min_acc;
  }
}

void SizeIndex::check_level(std::size_t level) const {
  if (level >= prefix_.size()) {
    throw std::out_of_range("SizeIndex: track " + std::to_string(level) +
                            " out of range (tracks=" +
                            std::to_string(prefix_.size()) + ")");
  }
}

void SizeIndex::check_end(std::size_t end) const {
  if (end > num_chunks_) {
    throw std::out_of_range("SizeIndex: chunk bound " + std::to_string(end) +
                            " out of range (chunks=" +
                            std::to_string(num_chunks_) + ")");
  }
}

double SizeIndex::prefix_bits(std::size_t level, std::size_t end) const {
  check_level(level);
  check_end(end);
  return prefix_[level][end];
}

double SizeIndex::range_bits(std::size_t level, std::size_t begin,
                             std::size_t end) const {
  check_level(level);
  check_end(end);
  if (begin > end) {
    throw std::out_of_range("SizeIndex: range begin " +
                            std::to_string(begin) + " exceeds end " +
                            std::to_string(end));
  }
  return prefix_[level][end] - prefix_[level][begin];
}

double SizeIndex::min_track_prefix_bits(std::size_t end) const {
  check_end(end);
  return min_prefix_[end];
}

double SizeIndex::min_track_range_bits(std::size_t begin,
                                       std::size_t end) const {
  check_end(end);
  if (begin > end) {
    throw std::out_of_range("SizeIndex: range begin " +
                            std::to_string(begin) + " exceeds end " +
                            std::to_string(end));
  }
  return min_prefix_[end] - min_prefix_[begin];
}

double SizeIndex::total_bits(std::size_t level) const {
  check_level(level);
  return prefix_[level][num_chunks_];
}

}  // namespace vbr::video
