// DASH-like manifest serialization.
//
// Serializes a Video to a plain-text manifest and parses it back. The format
// mirrors what a DASH MPD gives an ABR client — the track ladder with
// declared average/peak bitrates and the per-chunk segment size table (the
// paper's LoadSegmentSize extension to dash.js) — plus an optional
// evaluation sidecar carrying the per-chunk quality scores and source SI/TI,
// which a real client would never see but the evaluation harness needs.
//
// Two ingestion modes:
//   - strict (the default): any malformed token aborts with a
//     std::runtime_error naming the line and field. Non-finite or
//     non-positive sizes, bitrates, and chunk durations are rejected — a
//     NaN in a size table must never reach a scheme.
//   - lenient: real-world manifests arrive truncated, with corrupted size
//     cells, or without evaluation sidecars. Lenient mode repairs what it
//     can (corrupt size cells fall back to the track's declared average
//     rate, corrupt quality/scene cells become zeros, a missing sidecar is
//     synthesized as all-zero) and reports every repair as a per-line
//     diagnostic instead of throwing. Structural damage that cannot be
//     repaired (bad magic, unreadable header, a track with neither usable
//     sizes nor a declared rate) still throws.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "video/video.h"

namespace vbr::video {

/// What to include when writing a manifest.
struct ManifestOptions {
  /// Include per-chunk quality and scene-info sidecar (required to parse the
  /// manifest back into a full Video in strict mode; lenient mode
  /// synthesizes zeros without it).
  bool include_sidecar = true;
};

/// Writes `v` to `os` in manifest text format.
void write_manifest(std::ostream& os, const Video& v,
                    const ManifestOptions& opts = {});

/// Serializes to a string.
[[nodiscard]] std::string to_manifest_string(const Video& v,
                                             const ManifestOptions& opts = {});

/// One recoverable problem found during lenient ingestion.
struct ManifestDiagnostic {
  std::size_t line = 0;  ///< 1-based manifest line the problem was found on.
  std::string field;     ///< Field being parsed (e.g. "segment size").
  std::string message;   ///< What was wrong and how it was repaired.

  [[nodiscard]] std::string to_string() const;
};

struct ManifestReadOptions {
  /// Repair-and-continue instead of throwing on recoverable damage.
  bool lenient = false;
};

/// What lenient ingestion had to do to produce a usable Video.
struct ManifestReadReport {
  std::vector<ManifestDiagnostic> diagnostics;
  std::size_t repaired_sizes = 0;     ///< Size cells replaced by fallbacks.
  std::size_t defaulted_quality = 0;  ///< Quality/scene cells zeroed.
  bool sidecar_missing = false;       ///< Sidecar absent; zeros synthesized.

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

/// Parses a manifest previously written with the sidecar enabled (strict
/// mode). Throws std::runtime_error naming the offending line and field on
/// malformed input or a missing sidecar.
[[nodiscard]] Video read_manifest(std::istream& is);

/// Parses with explicit mode control. In lenient mode, recoverable damage
/// is repaired and recorded into `report` (ignored when null) instead of
/// aborting; unrecoverable structural damage still throws.
[[nodiscard]] Video read_manifest(std::istream& is,
                                  const ManifestReadOptions& opts,
                                  ManifestReadReport* report = nullptr);

/// Parses from a string (strict mode).
[[nodiscard]] Video from_manifest_string(const std::string& text);

/// Parses from a string with explicit mode control.
[[nodiscard]] Video from_manifest_string(const std::string& text,
                                         const ManifestReadOptions& opts,
                                         ManifestReadReport* report = nullptr);

}  // namespace vbr::video
