// DASH-like manifest serialization.
//
// Serializes a Video to a plain-text manifest and parses it back. The format
// mirrors what a DASH MPD gives an ABR client — the track ladder with
// declared average/peak bitrates and the per-chunk segment size table (the
// paper's LoadSegmentSize extension to dash.js) — plus an optional
// evaluation sidecar carrying the per-chunk quality scores and source SI/TI,
// which a real client would never see but the evaluation harness needs.
#pragma once

#include <iosfwd>
#include <string>

#include "video/video.h"

namespace vbr::video {

/// What to include when writing a manifest.
struct ManifestOptions {
  /// Include per-chunk quality and scene-info sidecar (required to parse the
  /// manifest back into a full Video).
  bool include_sidecar = true;
};

/// Writes `v` to `os` in manifest text format.
void write_manifest(std::ostream& os, const Video& v,
                    const ManifestOptions& opts = {});

/// Serializes to a string.
[[nodiscard]] std::string to_manifest_string(const Video& v,
                                             const ManifestOptions& opts = {});

/// Parses a manifest previously written with the sidecar enabled.
/// Throws std::runtime_error on malformed input or a missing sidecar.
[[nodiscard]] Video read_manifest(std::istream& is);

/// Parses from a string.
[[nodiscard]] Video from_manifest_string(const std::string& text);

}  // namespace vbr::video
