#include "video/size_provider.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::video {

namespace {

/// Estimates never collapse to zero: a degenerate 0-bit belief would divide
/// by zero in download-time predictions downstream.
constexpr double kMinEstimateBits = 1.0;

/// splitmix64 finalizer (Vigna), the same counter-based mixer the fault
/// model uses; duplicated here because the video layer must not depend on
/// the net layer.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hashes (seed, track, chunk, salt) into a uniform double in [0, 1).
double keyed_u01(std::uint64_t seed, std::size_t level, std::size_t chunk,
                 std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ mix64(static_cast<std::uint64_t>(level)));
  h = mix64(h ^ mix64(static_cast<std::uint64_t>(chunk) ^ salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double declared_rate_bits(const Video& v, std::size_t level, std::size_t i) {
  const Track& t = v.track(level);
  return t.average_bitrate_bps() * t.chunk(i).duration_s;
}

}  // namespace

double OracleSizeProvider::size_bits(const Video& v, std::size_t level,
                                     std::size_t i) const {
  return v.chunk_size_bits(level, i);
}

void OracleSizeProvider::fill_size_bits(const Video& v, std::size_t level,
                                        std::size_t begin, std::size_t end,
                                        double* out) const {
  // Bounds via the same .at() path per entry; values are the table's own.
  for (std::size_t i = begin; i < end; ++i) {
    out[i - begin] = v.chunk_size_bits(level, i);
  }
}

double DeclaredRateSizeProvider::size_bits(const Video& v, std::size_t level,
                                           std::size_t i) const {
  return declared_rate_bits(v, level, i);
}

NoisySizeProvider::NoisySizeProvider(double err, std::uint64_t seed)
    : err_(err), seed_(seed) {
  // Negated-range form so NaN (which fails every comparison) is rejected.
  if (!(err_ >= 0.0 && err_ < 1.0)) {
    throw std::invalid_argument("NoisySizeProvider: err out of [0, 1)");
  }
}

double NoisySizeProvider::size_bits(const Video& v, std::size_t level,
                                    std::size_t i) const {
  const double truth = v.chunk_size_bits(level, i);
  if (err_ == 0.0) {
    return truth;
  }
  const double u = keyed_u01(seed_, level, i, 0x51);
  const double factor = 1.0 - err_ + 2.0 * err_ * u;
  return std::max(truth * factor, kMinEstimateBits);
}

std::string NoisySizeProvider::name() const {
  return "noisy(err=" + std::to_string(err_) + ")";
}

PartialSizeProvider::PartialSizeProvider(double miss_rate, std::uint64_t seed,
                                         std::size_t known_prefix_chunks)
    : miss_rate_(miss_rate),
      seed_(seed),
      known_prefix_chunks_(known_prefix_chunks) {
  if (!(miss_rate_ >= 0.0 && miss_rate_ <= 1.0)) {
    throw std::invalid_argument("PartialSizeProvider: miss rate out of [0, 1]");
  }
  if (known_prefix_chunks_ == 0) {
    throw std::invalid_argument(
        "PartialSizeProvider: zero-length known prefix (use kNoPrefixLimit "
        "for an untruncated table)");
  }
}

bool PartialSizeProvider::knows(std::size_t level, std::size_t i) const {
  if (i >= known_prefix_chunks_) {
    return false;
  }
  if (miss_rate_ <= 0.0) {
    return true;
  }
  return keyed_u01(seed_, level, i, 0x52) >= miss_rate_;
}

double PartialSizeProvider::size_bits(const Video& v, std::size_t level,
                                      std::size_t i) const {
  return knows(level, i) ? v.chunk_size_bits(level, i)
                         : declared_rate_bits(v, level, i);
}

std::string PartialSizeProvider::name() const {
  std::string n = "partial(miss=" + std::to_string(miss_rate_);
  if (known_prefix_chunks_ != kNoPrefixLimit) {
    n += ",prefix=" + std::to_string(known_prefix_chunks_);
  }
  return n + ")";
}

OnlineCorrectedSizeProvider::OnlineCorrectedSizeProvider(
    std::unique_ptr<ChunkSizeProvider> base, double alpha)
    : base_(std::move(base)), alpha_(alpha) {
  if (base_ == nullptr) {
    throw std::invalid_argument("OnlineCorrectedSizeProvider: null base");
  }
  if (!(alpha_ > 0.0 && alpha_ <= 1.0)) {
    throw std::invalid_argument(
        "OnlineCorrectedSizeProvider: alpha out of (0, 1]");
  }
}

double OnlineCorrectedSizeProvider::correction(std::size_t level) const {
  return level < correction_.size() ? correction_[level] : 1.0;
}

double OnlineCorrectedSizeProvider::size_bits(const Video& v,
                                              std::size_t level,
                                              std::size_t i) const {
  return std::max(base_->size_bits(v, level, i) * correction(level),
                  kMinEstimateBits);
}

void OnlineCorrectedSizeProvider::on_actual_size(const Video& v,
                                                 std::size_t level,
                                                 std::size_t i,
                                                 double actual_bits) {
  if (!std::isfinite(actual_bits) || actual_bits <= 0.0) {
    return;  // corrupt observation: never poison the model
  }
  const double estimated = base_->size_bits(v, level, i);
  if (!std::isfinite(estimated) || estimated <= 0.0) {
    return;
  }
  if (level >= correction_.size()) {
    correction_.resize(level + 1, 1.0);
  }
  const double ratio = actual_bits / estimated;
  // Clamp so one pathological sample cannot blow up every later estimate.
  correction_[level] = std::clamp(
      (1.0 - alpha_) * correction_[level] + alpha_ * ratio, 0.1, 10.0);
  base_->on_actual_size(v, level, i, actual_bits);
}

void OnlineCorrectedSizeProvider::reset() {
  correction_.clear();
  base_->reset();
}

std::string OnlineCorrectedSizeProvider::name() const {
  return "online-corrected(" + base_->name() + ")";
}

std::string to_string(SizeKnowledge k) {
  switch (k) {
    case SizeKnowledge::kOracle:
      return "oracle";
    case SizeKnowledge::kDeclared:
      return "declared";
    case SizeKnowledge::kNoisy:
      return "noisy";
    case SizeKnowledge::kPartial:
      return "partial";
  }
  return "oracle";
}

SizeKnowledge size_knowledge_from_string(const std::string& s) {
  if (s == "oracle") return SizeKnowledge::kOracle;
  if (s == "declared") return SizeKnowledge::kDeclared;
  if (s == "noisy") return SizeKnowledge::kNoisy;
  if (s == "partial") return SizeKnowledge::kPartial;
  throw std::invalid_argument("unknown size knowledge mode '" + s +
                              "' (oracle|declared|noisy|partial)");
}

void SizeKnowledgeConfig::validate() const {
  // Negated-range guards so NaN parameters are rejected too.
  if (!(noise_err >= 0.0 && noise_err < 1.0)) {
    throw std::invalid_argument("SizeKnowledgeConfig: noise_err out of [0, 1)");
  }
  if (!(miss_rate >= 0.0 && miss_rate <= 1.0)) {
    throw std::invalid_argument("SizeKnowledgeConfig: miss_rate out of [0, 1]");
  }
  if (!(correction_alpha > 0.0 && correction_alpha <= 1.0)) {
    throw std::invalid_argument(
        "SizeKnowledgeConfig: correction_alpha out of (0, 1]");
  }
}

std::unique_ptr<ChunkSizeProvider> make_size_provider(
    const SizeKnowledgeConfig& config) {
  config.validate();
  std::unique_ptr<ChunkSizeProvider> base;
  switch (config.mode) {
    case SizeKnowledge::kOracle:
      base = std::make_unique<OracleSizeProvider>();
      break;
    case SizeKnowledge::kDeclared:
      base = std::make_unique<DeclaredRateSizeProvider>();
      break;
    case SizeKnowledge::kNoisy:
      base = std::make_unique<NoisySizeProvider>(config.noise_err,
                                                 config.seed);
      break;
    case SizeKnowledge::kPartial:
      base = std::make_unique<PartialSizeProvider>(
          config.miss_rate, config.seed,
          config.known_prefix_chunks == 0
              ? PartialSizeProvider::kNoPrefixLimit
              : config.known_prefix_chunks);
      break;
  }
  if (config.online_correction) {
    return std::make_unique<OnlineCorrectedSizeProvider>(
        std::move(base), config.correction_alpha);
  }
  return base;
}

}  // namespace vbr::video
