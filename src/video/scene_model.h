// Synthetic scene-complexity model.
//
// Substitutes for the paper's raw source footage: instead of computing SI/TI
// (ITU-T P.910 spatial/temporal information) from real frames, we generate a
// per-chunk complexity process with the structure real content has —
// scene cuts, within-scene persistence, and genre-dependent statistics
// (sports/action are high-motion, animation/nature calmer). The encoder
// (encoder.h) allocates bits from this process, and the quality model
// (quality_model.h) scores the result, so the paper's key characterization
// (complex chunks are bigger yet lower quality) emerges from the pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "video/video.h"

namespace vbr::video {

/// Per-chunk output of the scene model.
struct SceneChunk {
  /// Normalized encoding complexity in (0, 1]: how many bits per pixel this
  /// chunk needs relative to the hardest content. Drives bit allocation.
  double complexity = 0.0;
  /// ITU-T P.910-style scene statistics of the "source footage".
  SceneInfo info;
};

/// Tunable statistics for one genre.
struct GenreProfile {
  double mean_scene_len_chunks = 6.0;  ///< Geometric scene-length mean.
  double complexity_mid = 0.45;        ///< Typical scene complexity.
  double complexity_spread = 0.20;     ///< Scene-to-scene spread.
  double high_action_prob = 0.15;      ///< Chance a scene is a complex burst.
  double within_scene_jitter = 0.04;   ///< Chunk-to-chunk AR(1) jitter.
};

/// Built-in profile for a genre (tuned so dataset statistics land in the
/// ranges the paper reports, Section 2).
[[nodiscard]] GenreProfile profile_for(Genre g);

/// Generates a deterministic per-chunk complexity trace.
///
/// @param genre       content genre (selects the statistical profile)
/// @param num_chunks  number of chunks to generate
/// @param seed        RNG seed; identical inputs give identical output
[[nodiscard]] std::vector<SceneChunk> generate_scene_trace(
    Genre genre, std::size_t num_chunks, std::uint64_t seed);

/// Same, with an explicit profile (for tests and custom content).
[[nodiscard]] std::vector<SceneChunk> generate_scene_trace(
    const GenreProfile& profile, std::size_t num_chunks, std::uint64_t seed);

}  // namespace vbr::video
