// Per-chunk cumulative size prefix tables: O(1) range-sum queries over the
// exact manifest size table.
//
// Look-ahead searches, cache-provisioning math, and dataset statistics all
// need "how many bits do chunks [a, b) of track l cost" — answered today by
// naive per-chunk summation loops that re-walk the table on every query.
// A SizeIndex is built once per Video (one pass per track) and answers any
// range query with one subtraction, plus a cross-track minimum table
// (min_track_prefix_bits) that lower-bounds the cost of *any* track choice
// per chunk — the admissible-bound ingredient for pruned look-ahead search
// (DESIGN.md §10).
//
// Exactness discipline: prefix_bits(level, end) is the left-to-right
// floating-point running sum of the table entries — bit-identical to the
// naive accumulation loop it replaces. Range queries are a subtraction of
// two prefixes (exact for the [0, end) case, within one rounding of the
// naive loop otherwise; callers needing the bit-exact loop sum over an
// interior range keep the loop).
//
// Error discipline: every query validates its indices and throws
// std::out_of_range — the same error type the underlying
// Track::chunk(i) / Video::track(l) `.at()` paths raise today.
#pragma once

#include <cstddef>
#include <vector>

#include "video/video.h"

namespace vbr::video {

/// Immutable prefix-sum index over one Video's exact chunk-size table.
class SizeIndex {
 public:
  /// Builds the per-track and min-over-tracks prefix tables in one pass.
  explicit SizeIndex(const Video& video);

  [[nodiscard]] std::size_t num_tracks() const {
    return prefix_.size();
  }
  [[nodiscard]] std::size_t num_chunks() const { return num_chunks_; }

  /// Sum of the sizes (bits) of chunks [0, end) of `level` — bit-identical
  /// to the naive left-to-right accumulation. end == 0 returns 0.
  /// Throws std::out_of_range on level >= num_tracks() or
  /// end > num_chunks().
  [[nodiscard]] double prefix_bits(std::size_t level, std::size_t end) const;

  /// Sum of the sizes (bits) of chunks [begin, end) of `level`, computed as
  /// prefix_bits(end) - prefix_bits(begin). Throws std::out_of_range on
  /// out-of-range indices or begin > end.
  [[nodiscard]] double range_bits(std::size_t level, std::size_t begin,
                                  std::size_t end) const;

  /// Sum over chunks [0, end) of the per-chunk minimum size across tracks:
  /// a lower bound on the bits any track sequence must download for that
  /// span. Same bounds/error discipline as prefix_bits.
  [[nodiscard]] double min_track_prefix_bits(std::size_t end) const;

  /// Range form of min_track_prefix_bits over [begin, end).
  [[nodiscard]] double min_track_range_bits(std::size_t begin,
                                            std::size_t end) const;

  /// Total size of a whole track — prefix_bits(level, num_chunks()).
  [[nodiscard]] double total_bits(std::size_t level) const;

 private:
  void check_level(std::size_t level) const;
  void check_end(std::size_t end) const;

  std::size_t num_chunks_ = 0;
  /// prefix_[l][i] = sum of chunk sizes [0, i) of track l; length chunks+1.
  std::vector<std::vector<double>> prefix_;
  /// min_prefix_[i] = sum over [0, i) of min-over-tracks chunk size.
  std::vector<double> min_prefix_;
};

}  // namespace vbr::video
