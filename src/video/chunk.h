// Core per-chunk data model for VBR-encoded ABR video.
//
// A chunk is a few seconds of playback in one track. VBR encoding gives each
// chunk its own size (and thus bitrate); the per-chunk quality scores are the
// "ground truth" an evaluation would compute offline with a reference encoder
// (the paper uses PSNR, SSIM, and Netflix's VMAF in TV and phone variants).
#pragma once

namespace vbr::video {

/// Which perceptual-quality figure to read off a chunk.
enum class QualityMetric {
  kPsnr,       ///< Peak signal-to-noise ratio, dB (median over frames).
  kSsim,       ///< Structural similarity, [0, 1].
  kVmafTv,     ///< VMAF, TV model (larger screens), [0, 100].
  kVmafPhone,  ///< VMAF, phone model (small screens), [0, 100].
};

/// Quality of one encoded chunk under the four metrics used in the paper.
struct ChunkQuality {
  double psnr_db = 0.0;
  double ssim = 0.0;
  double vmaf_tv = 0.0;
  double vmaf_phone = 0.0;

  [[nodiscard]] double get(QualityMetric m) const {
    switch (m) {
      case QualityMetric::kPsnr:
        return psnr_db;
      case QualityMetric::kSsim:
        return ssim;
      case QualityMetric::kVmafTv:
        return vmaf_tv;
      case QualityMetric::kVmafPhone:
        return vmaf_phone;
    }
    return 0.0;
  }
};

/// One encoded media chunk within a track.
struct Chunk {
  double size_bits = 0.0;   ///< Encoded size in bits.
  double duration_s = 0.0;  ///< Playback duration in seconds.
  ChunkQuality quality;     ///< Offline-computed quality scores.

  /// Encoded bitrate of this chunk (bits per second of playback).
  [[nodiscard]] double bitrate_bps() const { return size_bits / duration_s; }
};

}  // namespace vbr::video
