#include "video/manifest.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vbr::video {

namespace {

constexpr const char* kMagic = "VBR-MPD/1";

/// Counts above this are treated as corruption, not content: a garbage
/// track/chunk count must not turn into a multi-gigabyte allocation.
constexpr long long kMaxCount = 1'000'000;

[[noreturn]] void fail(std::size_t line, const std::string& field,
                       const std::string& message) {
  throw std::runtime_error("manifest:" + std::to_string(line) + ": field '" +
                           field + "': " + message);
}

/// Full-token numeric parses: trailing garbage ("12x4") is a parse failure,
/// unlike istream extraction which would silently split the token. strtod
/// accepts "nan"/"inf" spellings — they parse here and are rejected by the
/// finiteness checks at the call sites, which is the point: a NaN must be a
/// *diagnosed* value, not a token-level accident.
std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<long long> parse_int(const std::string& s) {
  if (s.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return std::nullopt;
  }
  return v;
}

/// Structural keywords of the format. Lenient mode uses these to detect a
/// truncated data row: a keyword where a number belongs means the row ended
/// early, and the keyword must not be consumed as data.
bool is_keyword(const std::string& s) {
  return s == "name" || s == "genre" || s == "codec" ||
         s == "chunk_duration" || s == "tracks" || s == "chunks" ||
         s == "track" || s == "avg_bps" || s == "peak_bps" ||
         s == "segment_sizes_bits" || s == "sidecar" || s == "quality" ||
         s == "scene_info";
}

std::optional<Genre> genre_from_string(const std::string& s) {
  static const std::map<std::string, Genre> kMap = {
      {"animation", Genre::kAnimation}, {"scifi", Genre::kSciFi},
      {"sports", Genre::kSports},       {"animal", Genre::kAnimal},
      {"nature", Genre::kNature},       {"action", Genre::kAction},
  };
  const auto it = kMap.find(s);
  if (it == kMap.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<Codec> codec_from_string(const std::string& s) {
  if (s == "H.264") return Codec::kH264;
  if (s == "H.265") return Codec::kH265;
  return std::nullopt;
}

struct Token {
  std::string text;
  std::size_t line = 1;
};

/// Whole-stream tokenizer that remembers which line each token came from,
/// so every error and diagnostic can name its source line.
class TokenStream {
 public:
  explicit TokenStream(std::istream& is) {
    std::string line_text;
    std::size_t line = 0;
    while (std::getline(is, line_text)) {
      ++line;
      std::istringstream ls(line_text);
      std::string word;
      while (ls >> word) {
        tokens_.push_back({std::move(word), line});
      }
    }
    last_line_ = std::max<std::size_t>(line, 1);
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }

  [[nodiscard]] const Token* peek() const {
    return done() ? nullptr : &tokens_[pos_];
  }

  Token next(const std::string& field) {
    if (done()) {
      fail(last_line_, field, "unexpected end of manifest");
    }
    return tokens_[pos_++];
  }

  /// Line of the next unread token, or of the last line when exhausted.
  [[nodiscard]] std::size_t current_line() const {
    return done() ? last_line_ : tokens_[pos_].line;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t last_line_ = 1;
};

class Parser {
 public:
  Parser(std::istream& is, const ManifestReadOptions& opts,
         ManifestReadReport* report)
      : ts_(is), lenient_(opts.lenient), report_(report) {}

  Video parse();

 private:
  struct RawTrack {
    int level = 0;
    Resolution res;
    std::optional<double> declared_avg_bps;
    std::vector<Chunk> chunks;
  };

  void diag(std::size_t line, const std::string& field, std::string message) {
    if (report_ != nullptr) {
      report_->diagnostics.push_back({line, field, std::move(message)});
    }
  }

  Token expect_keyword(const std::string& keyword) {
    Token tok = ts_.next(keyword);
    if (tok.text != keyword) {
      fail(tok.line, keyword,
           "expected keyword '" + keyword + "', got '" + tok.text + "'");
    }
    return tok;
  }

  /// Header count (tracks/chunks): structural in both modes — without it
  /// the rest of the layout is unknowable.
  std::size_t read_count(const char* field) {
    const Token tok = ts_.next(field);
    const auto v = parse_int(tok.text);
    if (!v || *v <= 0 || *v > kMaxCount) {
      fail(tok.line, field,
           "'" + tok.text + "' is not a plausible positive count");
    }
    return static_cast<std::size_t>(*v);
  }

  /// Small track-header integer (level/width/height). Lenient mode repairs
  /// an unusable value to `fallback`.
  int read_track_int(const char* field, int fallback) {
    const Token tok = ts_.next(field);
    const auto v = parse_int(tok.text);
    if (v && *v >= 0 && *v <= kMaxCount) {
      return static_cast<int>(*v);
    }
    if (!lenient_) {
      fail(tok.line, field,
           "'" + tok.text + "' is not a non-negative integer");
    }
    diag(tok.line, field,
         "'" + tok.text + "' is not a non-negative integer; using " +
             std::to_string(fallback));
    return fallback;
  }

  /// Declared bitrate. Strict mode rejects non-finite and non-positive
  /// values even though the value is recomputed on load — a manifest that
  /// declares a NaN bitrate is corrupt and must say so loudly. Lenient mode
  /// returns nullopt (the declared-rate fallback is then unavailable).
  std::optional<double> read_bitrate(const char* field) {
    const Token tok = ts_.next(field);
    const auto v = parse_double(tok.text);
    if (v && std::isfinite(*v) && *v > 0.0) {
      return v;
    }
    if (!lenient_) {
      fail(tok.line, field,
           "'" + tok.text + "' is not a finite positive bitrate");
    }
    diag(tok.line, field,
         "'" + tok.text + "' is not a finite positive bitrate; ignoring");
    return std::nullopt;
  }

  /// One sidecar numeric cell. Strict: must parse to a finite value.
  /// Lenient: corrupt tokens become 0.0 with a diagnostic; truncation (a
  /// keyword or EOF where a number belongs) yields 0.0 without consuming
  /// the keyword, reported once per parse.
  double sidecar_cell(const char* field) {
    const Token* peeked = ts_.peek();
    if (lenient_ && (peeked == nullptr || is_keyword(peeked->text))) {
      if (!sidecar_truncation_reported_) {
        sidecar_truncation_reported_ = true;
        diag(ts_.current_line(), field,
             "sidecar truncated; remaining cells zeroed");
      }
      note_defaulted();
      return 0.0;
    }
    const Token tok = ts_.next(field);
    const auto v = parse_double(tok.text);
    if (v && std::isfinite(*v)) {
      return *v;
    }
    if (!lenient_) {
      fail(tok.line, field, "'" + tok.text + "' is not a finite number");
    }
    diag(tok.line, field, "'" + tok.text + "' is not a finite number; using 0");
    note_defaulted();
    return 0.0;
  }

  void note_defaulted() {
    if (report_ != nullptr) {
      ++report_->defaulted_quality;
    }
  }

  void parse_sizes(RawTrack& rt, std::size_t track_idx, std::size_t track_line,
                   std::size_t num_chunks, double chunk_duration);

  TokenStream ts_;
  bool lenient_;
  ManifestReadReport* report_;
  bool sidecar_truncation_reported_ = false;
};

void Parser::parse_sizes(RawTrack& rt, std::size_t track_idx,
                         std::size_t track_line, std::size_t num_chunks,
                         double chunk_duration) {
  const std::string where = "track " + std::to_string(track_idx);
  rt.chunks.resize(num_chunks);
  std::vector<bool> valid(num_chunks, false);
  for (std::size_t i = 0; i < num_chunks; ++i) {
    const Token* peeked = ts_.peek();
    if (lenient_ && (peeked == nullptr || is_keyword(peeked->text))) {
      diag(ts_.current_line(), "segment size",
           where + ": size table truncated at chunk " + std::to_string(i) +
               " of " + std::to_string(num_chunks) +
               "; filling the rest from the declared rate");
      break;
    }
    const Token tok = ts_.next("segment size");
    const auto v = parse_double(tok.text);
    if (v && std::isfinite(*v) && *v > 0.0) {
      rt.chunks[i].size_bits = *v;
      valid[i] = true;
      continue;
    }
    if (!lenient_) {
      fail(tok.line, "segment size",
           "'" + tok.text + "' is not a finite positive size (" + where +
               ", chunk " + std::to_string(i) + ")");
    }
    diag(tok.line, "segment size",
         where + ", chunk " + std::to_string(i) + ": '" + tok.text +
             "' is not a finite positive size; using declared-rate fallback");
  }

  // Repair holes. Fallback order: the track's declared average rate, then
  // the mean of the cells that did survive. A track with neither is
  // unrecoverable — inventing a bitrate from nothing would be worse than
  // failing.
  double fallback_bits = 0.0;
  if (rt.declared_avg_bps) {
    fallback_bits = *rt.declared_avg_bps * chunk_duration;
  } else {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < num_chunks; ++i) {
      if (valid[i]) {
        sum += rt.chunks[i].size_bits;
        ++n;
      }
    }
    if (n > 0) {
      fallback_bits = sum / static_cast<double>(n);
    }
  }
  for (std::size_t i = 0; i < num_chunks; ++i) {
    rt.chunks[i].duration_s = chunk_duration;
    if (valid[i]) {
      continue;
    }
    if (fallback_bits <= 0.0) {
      fail(track_line, "segment_sizes_bits",
           where + ": no usable sizes and no declared average bitrate");
    }
    rt.chunks[i].size_bits = fallback_bits;
    if (report_ != nullptr) {
      ++report_->repaired_sizes;
    }
  }
}

Video Parser::parse() {
  const Token magic = ts_.next("magic");
  if (magic.text != kMagic) {
    fail(magic.line, "magic",
         "bad magic '" + magic.text + "' (expected '" + kMagic + "')");
  }

  expect_keyword("name");
  const std::string name = ts_.next("name").text;

  expect_keyword("genre");
  const Token genre_tok = ts_.next("genre");
  Genre genre = Genre::kNature;
  if (const auto g = genre_from_string(genre_tok.text)) {
    genre = *g;
  } else if (lenient_) {
    diag(genre_tok.line, "genre",
         "unknown genre '" + genre_tok.text + "'; defaulting to nature");
  } else {
    fail(genre_tok.line, "genre", "unknown genre '" + genre_tok.text + "'");
  }

  expect_keyword("codec");
  const Token codec_tok = ts_.next("codec");
  Codec codec = Codec::kH264;
  if (const auto c = codec_from_string(codec_tok.text)) {
    codec = *c;
  } else if (lenient_) {
    diag(codec_tok.line, "codec",
         "unknown codec '" + codec_tok.text + "'; defaulting to H.264");
  } else {
    fail(codec_tok.line, "codec", "unknown codec '" + codec_tok.text + "'");
  }

  expect_keyword("chunk_duration");
  const Token dur_tok = ts_.next("chunk_duration");
  const auto dur = parse_double(dur_tok.text);
  if (!dur || !std::isfinite(*dur) || *dur <= 0.0) {
    // Unrecoverable even leniently: the duration scales every chunk of
    // every track, so there is nothing sound to repair it from.
    fail(dur_tok.line, "chunk_duration",
         "'" + dur_tok.text + "' is not a finite positive duration");
  }
  const double chunk_duration = *dur;

  expect_keyword("tracks");
  const std::size_t num_tracks = read_count("tracks");
  expect_keyword("chunks");
  const std::size_t num_chunks = read_count("chunks");

  std::vector<RawTrack> raw(num_tracks);
  for (std::size_t t = 0; t < num_tracks; ++t) {
    const Token track_tok = expect_keyword("track");
    RawTrack& rt = raw[t];
    rt.level = read_track_int("level", static_cast<int>(t));
    rt.res.width = read_track_int("width", 0);
    rt.res.height = read_track_int("height", 0);
    expect_keyword("avg_bps");
    rt.declared_avg_bps = read_bitrate("avg_bps");
    expect_keyword("peak_bps");
    (void)read_bitrate("peak_bps");  // derived; recomputed on load
    expect_keyword("segment_sizes_bits");
    parse_sizes(rt, t, track_tok.line, num_chunks, chunk_duration);
  }

  // Sidecar flag. Strict mode requires it (quality/scene data cannot be
  // reconstructed); lenient mode synthesizes zeros.
  bool has_sidecar = false;
  if (ts_.peek() == nullptr) {
    if (!lenient_) {
      fail(ts_.current_line(), "sidecar", "unexpected end of manifest");
    }
    diag(ts_.current_line(), "sidecar",
         "manifest ends before the sidecar flag; quality and scene data "
         "zeroed");
  } else {
    expect_keyword("sidecar");
    const Token flag_tok = ts_.next("sidecar flag");
    const auto flag = parse_int(flag_tok.text);
    if (flag && *flag == 1) {
      has_sidecar = true;
    } else if (!lenient_) {
      fail(flag_tok.line, "sidecar flag",
           "sidecar required to reconstruct a Video (flag is '" +
               flag_tok.text + "')");
    } else {
      diag(flag_tok.line, "sidecar flag",
           "manifest written without sidecar; quality and scene data zeroed");
    }
  }
  if (!has_sidecar && report_ != nullptr) {
    report_->sidecar_missing = true;
  }

  if (has_sidecar) {
    for (std::size_t t = 0; t < num_tracks; ++t) {
      if (lenient_ && ts_.peek() == nullptr) {
        diag(ts_.current_line(), "quality",
             "sidecar truncated before quality block " + std::to_string(t) +
                 "; remaining quality zeroed");
        break;
      }
      expect_keyword("quality");
      const Token lvl_tok = ts_.next("quality level");
      const auto lvl = parse_int(lvl_tok.text);
      std::size_t level = t;
      if (lvl && *lvl >= 0 && static_cast<std::size_t>(*lvl) < num_tracks) {
        level = static_cast<std::size_t>(*lvl);
      } else if (lenient_) {
        diag(lvl_tok.line, "quality level",
             "'" + lvl_tok.text + "' is not a valid track index; assuming "
             "block order " + std::to_string(t));
      } else {
        fail(lvl_tok.line, "quality level",
             "'" + lvl_tok.text + "' is not a valid track index");
      }
      for (std::size_t i = 0; i < num_chunks; ++i) {
        ChunkQuality& q = raw[level].chunks[i].quality;
        q.psnr_db = sidecar_cell("psnr");
        q.ssim = sidecar_cell("ssim");
        q.vmaf_tv = sidecar_cell("vmaf_tv");
        q.vmaf_phone = sidecar_cell("vmaf_phone");
      }
    }
  }

  std::vector<SceneInfo> infos(num_chunks);
  if (has_sidecar) {
    if (lenient_ && ts_.peek() == nullptr) {
      diag(ts_.current_line(), "scene_info",
           "sidecar truncated before scene_info; zeroed");
    } else {
      expect_keyword("scene_info");
      for (std::size_t i = 0; i < num_chunks; ++i) {
        infos[i].si = sidecar_cell("si");
        infos[i].ti = sidecar_cell("ti");
      }
    }
  }

  // Lenient repair can perturb the ladder out of ascending-average order
  // (e.g. a low track repaired onto a large declared rate); Video requires
  // strictly ascending. Re-sorting keeps the manifest usable and is
  // reported like any other repair.
  const auto avg_of = [](const RawTrack& rt) {
    double bits = 0.0;
    double dur_s = 0.0;
    for (const Chunk& c : rt.chunks) {
      bits += c.size_bits;
      dur_s += c.duration_s;
    }
    return bits / dur_s;
  };
  if (lenient_ &&
      !std::is_sorted(raw.begin(), raw.end(),
                      [&](const RawTrack& a, const RawTrack& b) {
                        return avg_of(a) < avg_of(b);
                      })) {
    diag(ts_.current_line(), "track",
         "ladder not in ascending average-bitrate order; re-sorting");
    std::stable_sort(raw.begin(), raw.end(),
                     [&](const RawTrack& a, const RawTrack& b) {
                       return avg_of(a) < avg_of(b);
                     });
    for (std::size_t t = 0; t < raw.size(); ++t) {
      raw[t].level = static_cast<int>(t);
    }
  }

  try {
    std::vector<Track> tracks;
    tracks.reserve(num_tracks);
    for (RawTrack& rt : raw) {
      tracks.emplace_back(rt.level, rt.res, codec, std::move(rt.chunks));
    }
    return Video(name, genre, std::move(tracks), std::move(infos));
  } catch (const std::invalid_argument& e) {
    // Normalize construction failures to the parser's exception type: the
    // caller handed us bytes, not arguments.
    throw std::runtime_error(
        std::string("manifest: parsed fields do not form a valid video: ") +
        e.what());
  }
}

}  // namespace

void write_manifest(std::ostream& os, const Video& v,
                    const ManifestOptions& opts) {
  os << kMagic << "\n";
  os << "name " << v.name() << "\n";
  os << "genre " << to_string(v.genre()) << "\n";
  os << "codec " << to_string(v.codec()) << "\n";
  os << std::setprecision(12);
  os << "chunk_duration " << v.chunk_duration_s() << "\n";
  os << "tracks " << v.num_tracks() << "\n";
  os << "chunks " << v.num_chunks() << "\n";
  for (const Track& t : v.tracks()) {
    os << "track " << t.level() << " " << t.resolution().width << " "
       << t.resolution().height << " avg_bps " << t.average_bitrate_bps()
       << " peak_bps " << t.peak_bitrate_bps() << "\n";
    os << "segment_sizes_bits";
    for (const Chunk& c : t.chunks()) {
      os << " " << c.size_bits;
    }
    os << "\n";
  }
  os << "sidecar " << (opts.include_sidecar ? 1 : 0) << "\n";
  if (!opts.include_sidecar) {
    return;
  }
  for (const Track& t : v.tracks()) {
    os << "quality " << t.level() << "\n";
    for (const Chunk& c : t.chunks()) {
      os << c.quality.psnr_db << " " << c.quality.ssim << " "
         << c.quality.vmaf_tv << " " << c.quality.vmaf_phone << "\n";
    }
  }
  os << "scene_info\n";
  for (const SceneInfo& si : v.scene_infos()) {
    os << si.si << " " << si.ti << "\n";
  }
}

std::string to_manifest_string(const Video& v, const ManifestOptions& opts) {
  std::ostringstream oss;
  write_manifest(oss, v, opts);
  return oss.str();
}

std::string ManifestDiagnostic::to_string() const {
  return "line " + std::to_string(line) + ": field '" + field + "': " +
         message;
}

Video read_manifest(std::istream& is) {
  return read_manifest(is, ManifestReadOptions{}, nullptr);
}

Video read_manifest(std::istream& is, const ManifestReadOptions& opts,
                    ManifestReadReport* report) {
  if (report != nullptr) {
    *report = ManifestReadReport{};
  }
  Parser parser(is, opts, report);
  return parser.parse();
}

Video from_manifest_string(const std::string& text) {
  std::istringstream iss(text);
  return read_manifest(iss);
}

Video from_manifest_string(const std::string& text,
                           const ManifestReadOptions& opts,
                           ManifestReadReport* report) {
  std::istringstream iss(text);
  return read_manifest(iss, opts, report);
}

}  // namespace vbr::video
