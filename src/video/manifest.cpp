#include "video/manifest.h"

#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

namespace vbr::video {

namespace {

constexpr const char* kMagic = "VBR-MPD/1";

Genre genre_from_string(const std::string& s) {
  static const std::map<std::string, Genre> kMap = {
      {"animation", Genre::kAnimation}, {"scifi", Genre::kSciFi},
      {"sports", Genre::kSports},       {"animal", Genre::kAnimal},
      {"nature", Genre::kNature},       {"action", Genre::kAction},
  };
  const auto it = kMap.find(s);
  if (it == kMap.end()) {
    throw std::runtime_error("manifest: unknown genre '" + s + "'");
  }
  return it->second;
}

Codec codec_from_string(const std::string& s) {
  if (s == "H.264") return Codec::kH264;
  if (s == "H.265") return Codec::kH265;
  throw std::runtime_error("manifest: unknown codec '" + s + "'");
}

std::string expect_keyword(std::istream& is, const std::string& keyword) {
  std::string word;
  if (!(is >> word) || word != keyword) {
    throw std::runtime_error("manifest: expected '" + keyword + "', got '" +
                             word + "'");
  }
  return word;
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T v{};
  if (!(is >> v)) {
    throw std::runtime_error(std::string("manifest: failed to read ") + what);
  }
  return v;
}

}  // namespace

void write_manifest(std::ostream& os, const Video& v,
                    const ManifestOptions& opts) {
  os << kMagic << "\n";
  os << "name " << v.name() << "\n";
  os << "genre " << to_string(v.genre()) << "\n";
  os << "codec " << to_string(v.codec()) << "\n";
  os << std::setprecision(12);
  os << "chunk_duration " << v.chunk_duration_s() << "\n";
  os << "tracks " << v.num_tracks() << "\n";
  os << "chunks " << v.num_chunks() << "\n";
  for (const Track& t : v.tracks()) {
    os << "track " << t.level() << " " << t.resolution().width << " "
       << t.resolution().height << " avg_bps " << t.average_bitrate_bps()
       << " peak_bps " << t.peak_bitrate_bps() << "\n";
    os << "segment_sizes_bits";
    for (const Chunk& c : t.chunks()) {
      os << " " << c.size_bits;
    }
    os << "\n";
  }
  os << "sidecar " << (opts.include_sidecar ? 1 : 0) << "\n";
  if (!opts.include_sidecar) {
    return;
  }
  for (const Track& t : v.tracks()) {
    os << "quality " << t.level() << "\n";
    for (const Chunk& c : t.chunks()) {
      os << c.quality.psnr_db << " " << c.quality.ssim << " "
         << c.quality.vmaf_tv << " " << c.quality.vmaf_phone << "\n";
    }
  }
  os << "scene_info\n";
  for (const SceneInfo& si : v.scene_infos()) {
    os << si.si << " " << si.ti << "\n";
  }
}

std::string to_manifest_string(const Video& v, const ManifestOptions& opts) {
  std::ostringstream oss;
  write_manifest(oss, v, opts);
  return oss.str();
}

Video read_manifest(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != kMagic) {
    throw std::runtime_error("manifest: bad magic");
  }
  expect_keyword(is, "name");
  const auto name = read_value<std::string>(is, "name");
  expect_keyword(is, "genre");
  const Genre genre = genre_from_string(read_value<std::string>(is, "genre"));
  expect_keyword(is, "codec");
  const Codec codec = codec_from_string(read_value<std::string>(is, "codec"));
  expect_keyword(is, "chunk_duration");
  const auto chunk_duration = read_value<double>(is, "chunk_duration");
  expect_keyword(is, "tracks");
  const auto num_tracks = read_value<std::size_t>(is, "tracks");
  expect_keyword(is, "chunks");
  const auto num_chunks = read_value<std::size_t>(is, "chunks");
  if (num_tracks == 0 || num_chunks == 0) {
    throw std::runtime_error("manifest: empty ladder or chunk list");
  }

  struct RawTrack {
    int level = 0;
    Resolution res;
    std::vector<Chunk> chunks;
  };
  std::vector<RawTrack> raw(num_tracks);
  for (std::size_t t = 0; t < num_tracks; ++t) {
    expect_keyword(is, "track");
    raw[t].level = read_value<int>(is, "level");
    raw[t].res.width = read_value<int>(is, "width");
    raw[t].res.height = read_value<int>(is, "height");
    expect_keyword(is, "avg_bps");
    (void)read_value<double>(is, "avg_bps");  // derived; recomputed on load
    expect_keyword(is, "peak_bps");
    (void)read_value<double>(is, "peak_bps");
    expect_keyword(is, "segment_sizes_bits");
    raw[t].chunks.resize(num_chunks);
    for (std::size_t i = 0; i < num_chunks; ++i) {
      raw[t].chunks[i].size_bits = read_value<double>(is, "segment size");
      raw[t].chunks[i].duration_s = chunk_duration;
    }
  }

  expect_keyword(is, "sidecar");
  const auto has_sidecar = read_value<int>(is, "sidecar flag");
  if (has_sidecar != 1) {
    throw std::runtime_error(
        "manifest: sidecar required to reconstruct a Video");
  }
  for (std::size_t t = 0; t < num_tracks; ++t) {
    expect_keyword(is, "quality");
    const auto level = read_value<std::size_t>(is, "quality level");
    if (level >= num_tracks) {
      throw std::runtime_error("manifest: quality level out of range");
    }
    for (std::size_t i = 0; i < num_chunks; ++i) {
      ChunkQuality& q = raw[level].chunks[i].quality;
      q.psnr_db = read_value<double>(is, "psnr");
      q.ssim = read_value<double>(is, "ssim");
      q.vmaf_tv = read_value<double>(is, "vmaf_tv");
      q.vmaf_phone = read_value<double>(is, "vmaf_phone");
    }
  }
  expect_keyword(is, "scene_info");
  std::vector<SceneInfo> infos(num_chunks);
  for (std::size_t i = 0; i < num_chunks; ++i) {
    infos[i].si = read_value<double>(is, "si");
    infos[i].ti = read_value<double>(is, "ti");
  }

  std::vector<Track> tracks;
  tracks.reserve(num_tracks);
  for (RawTrack& rt : raw) {
    tracks.emplace_back(rt.level, rt.res, codec, std::move(rt.chunks));
  }
  return Video(name, genre, std::move(tracks), std::move(infos));
}

Video from_manifest_string(const std::string& text) {
  std::istringstream iss(text);
  return read_manifest(iss);
}

}  // namespace vbr::video
