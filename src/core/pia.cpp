#include "core/pia.h"

#include <stdexcept>

namespace vbr::core {

Pia::Pia(CavaConfig config) : config_(config), pid_(config) {}

abr::Decision Pia::decide(const abr::StreamContext& ctx) {
  abr::validate_context(ctx);
  if (ctx.est_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Pia: non-positive bandwidth estimate");
  }
  const double u =
      pid_.update(ctx.buffer_s, config_.base_target_buffer_s, ctx.now_s,
                  ctx.video->chunk_duration_s());
  // CBR view: the highest track whose declared average bitrate fits C/u.
  const double budget = ctx.est_bandwidth_bps / u;
  return abr::Decision{.track = abr::highest_track_below(*ctx.video, budget)};
}

void Pia::reset() { pid_.reset(); }

}  // namespace vbr::core
