// All CAVA tunables in one place, with the paper's defaults (Sections 5-6).
#pragma once

#include <cstddef>

namespace vbr::core {

struct CavaConfig {
  // ---- PID feedback block (Section 5.2) -------------------------------
  /// Gains follow PIA's methodology: buffer errors are tens of seconds, so
  /// the proportional gain is small; a wide range of values performs
  /// similarly (Section 6.1).
  double kp = 0.01;    ///< Proportional gain (per second of buffer error).
  double ki = 0.0002;  ///< Integral gain (per second^2).
  /// Anti-windup clamp on the integral term's contribution (|Ki * integral|).
  double integral_clamp = 0.25;
  /// Controller output clamp: u in [u_min, u_max].
  double u_min = 0.3;
  double u_max = 2.0;

  // ---- Inner controller (Section 5.3) ---------------------------------
  std::size_t horizon_chunks = 5;   ///< N, the optimization horizon.
  double inner_window_s = 40.0;     ///< W, short-term bitrate filter window.
  double eta_same_class = 1.0;      ///< Track-change weight within a class.
  double alpha_complex = 1.3;       ///< Bandwidth inflation for Q4 chunks.
  double alpha_simple = 0.8;        ///< Bandwidth deflation for Q1-Q3 chunks.
  /// Q1-Q3 heuristic: if deflation lands on one of the two lowest levels
  /// while buffer > this threshold, retry without deflation.
  double no_deflate_buffer_s = 10.0;
  std::size_t low_level_threshold = 2;  ///< "Level 1 or 2" (1-based).
  /// Optional symmetric Q4 heuristic: skip inflation when the buffer is
  /// below this threshold (paper evaluates with it disabled).
  bool inflate_guard_enabled = false;
  double inflate_guard_buffer_s = 10.0;

  // ---- Outer controller (Section 5.4) ---------------------------------
  double base_target_buffer_s = 60.0;  ///< x_r.
  double outer_window_s = 200.0;       ///< W', preview look-ahead.
  double target_buffer_cap_factor = 2.0;  ///< x_r(t) <= cap * x_r.

  // ---- Principle toggles (Section 6.4 ablation) ------------------------
  bool use_differential_treatment = true;  ///< P2 (CAVA-p12).
  bool use_proactive_target = true;        ///< P3 (CAVA-p123).

  // ---- Complexity classification (Section 3.1.1) -----------------------
  std::size_t num_complexity_classes = 4;
  /// Use the content-based SI/TI classifier instead of the deployable
  /// chunk-size one (ablation: how much does the cheap proxy cost?).
  bool use_content_classifier = false;
};

/// The three ablation variants of Section 6.4.
[[nodiscard]] inline CavaConfig cava_p1_config() {
  CavaConfig c;
  c.use_differential_treatment = false;
  c.use_proactive_target = false;
  return c;
}

[[nodiscard]] inline CavaConfig cava_p12_config() {
  CavaConfig c;
  c.use_proactive_target = false;
  return c;
}

[[nodiscard]] inline CavaConfig cava_p123_config() { return CavaConfig{}; }

}  // namespace vbr::core
