// PIA-style baseline: PID-based adaptation designed for CBR (Qin et al.,
// INFOCOM 2017) — the control framework CAVA generalizes (Section 5, Fig. 5
// caption: "builds on the basic feedback control framework").
//
// Identical PID feedback block, but with the CBR-era assumptions the paper
// calls out as inadequate for VBR:
//   - a *fixed* target buffer level (no preview control);
//   - each track represented by its *average* bitrate only (no per-chunk
//     sizes, no short-term filter, no complexity classes);
//   - the track chosen is simply the highest whose average bitrate is at
//     most (estimated bandwidth) / u.
//
// Including it lets the ablation benches separate "PID control helps" from
// "VBR-awareness helps".
#pragma once

#include "abr/scheme.h"
#include "core/config.h"
#include "core/pid_controller.h"

namespace vbr::core {

class Pia final : public abr::AbrScheme {
 public:
  explicit Pia(CavaConfig config = {});

  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "PIA"; }

 private:
  CavaConfig config_;
  PidController pid_;
};

}  // namespace vbr::core
