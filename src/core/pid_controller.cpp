#include "core/pid_controller.h"

#include <algorithm>
#include <stdexcept>

namespace vbr::core {

PidController::PidController(const CavaConfig& config) : config_(config) {
  if (config_.kp < 0.0 || config_.ki < 0.0 || config_.u_min <= 0.0 ||
      config_.u_max <= config_.u_min || config_.integral_clamp < 0.0) {
    throw std::invalid_argument("PidController: bad config");
  }
}

double PidController::update(double buffer_s, double target_buffer_s,
                             double now_s, double chunk_duration_s) {
  if (buffer_s < 0.0 || target_buffer_s < 0.0 || chunk_duration_s <= 0.0) {
    throw std::invalid_argument("PidController::update: bad inputs");
  }
  const double error = target_buffer_s - buffer_s;

  // Integrate the error over elapsed wall-clock time, with anti-windup.
  if (last_time_s_ >= 0.0 && now_s > last_time_s_) {
    integral_ += error * (now_s - last_time_s_);
    if (config_.ki > 0.0) {
      const double clamp = config_.integral_clamp / config_.ki;
      integral_ = std::clamp(integral_, -clamp, clamp);
    }
  }
  last_time_s_ = now_s;

  const double indicator = buffer_s >= chunk_duration_s ? 1.0 : 0.0;
  const double u =
      config_.kp * error + config_.ki * integral_ + indicator;
  return std::clamp(u, config_.u_min, config_.u_max);
}

void PidController::reset() {
  integral_ = 0.0;
  last_time_s_ = -1.0;
}

}  // namespace vbr::core
