// Chunk-size-based scene-complexity classification (paper Section 3.1.1).
//
// VBR encoders give complex scenes more bits, and the relative chunk size is
// consistent across tracks, so the size distribution of a single *reference
// track* (by default the middle one) classifies every playback position into
// quantile classes: Q1 (smallest/simplest) .. Q4 (largest/most complex).
// This needs only the manifest's segment size table — no content analysis —
// which is what makes the scheme deployable.
//
// The class count is configurable (the paper notes quartiles are one choice
// among several); CAVA only distinguishes "top class" (complex) from the
// rest.
#pragma once

#include <cstddef>
#include <vector>

#include "video/video.h"

namespace vbr::core {

class ComplexityClassifier {
 public:
  /// Classifies every chunk position of `video` by the size quantiles of
  /// track `reference_track` into `num_classes` classes.
  /// Throws std::invalid_argument for num_classes < 2 or a bad track index.
  ComplexityClassifier(const video::Video& video, std::size_t reference_track,
                       std::size_t num_classes = 4);

  /// Classifies using the video's middle track and quartiles (the paper's
  /// default).
  explicit ComplexityClassifier(const video::Video& video);

  /// Classifies from an explicit per-chunk size sequence of a reference
  /// track — the degraded-metadata path, where a client only has *believed*
  /// sizes (see video::ChunkSizeProvider). A flat sequence (declared
  /// average rates) degenerates gracefully: every chunk lands in the bottom
  /// class, so "is it complex?" answers false and CAVA's differential
  /// treatment disables itself rather than firing at random.
  /// A named factory, not a constructor: a braced list of small integers
  /// must keep resolving to the precomputed-classes constructor below.
  /// Throws std::invalid_argument for num_classes < 2, an empty sequence,
  /// or non-finite/non-positive sizes.
  [[nodiscard]] static ComplexityClassifier from_reference_sizes(
      const std::vector<double>& reference_sizes_bits,
      std::size_t reference_track, std::size_t num_classes = 4);

  /// Wraps a precomputed class sequence (e.g. from a content-based SI/TI
  /// analysis) in the classifier interface, so CAVA can consume alternative
  /// complexity signals. Throws std::invalid_argument if any class is out
  /// of range or num_classes < 2.
  ComplexityClassifier(std::vector<std::size_t> classes,
                       std::size_t num_classes);

  /// Class of chunk i: 0 = smallest-size class, num_classes-1 = largest.
  [[nodiscard]] std::size_t class_of(std::size_t chunk) const {
    return classes_.at(chunk);
  }

  /// True if chunk i falls in the top (most complex, "Q4") class.
  [[nodiscard]] bool is_complex(std::size_t chunk) const {
    return classes_.at(chunk) == num_classes_ - 1;
  }

  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t reference_track() const {
    return reference_track_;
  }
  [[nodiscard]] const std::vector<std::size_t>& classes() const {
    return classes_;
  }

  /// Chunk indices in the top class (the paper's "Q4 chunks").
  [[nodiscard]] std::vector<std::size_t> complex_chunks() const;

 private:
  std::size_t reference_track_;
  std::size_t num_classes_;
  std::vector<std::size_t> classes_;
};

}  // namespace vbr::core
