// Outer controller: proactive target-buffer adjustment (paper Section 5.4).
//
// Preview control: when the next W' seconds of the reference track contain
// more bits than average (a cluster of complex scenes is coming), raise the
// target buffer level ahead of time so the PID loop banks extra buffer
// before the expensive stretch arrives:
//
//   x_r(t) = x_r + max( (sum_{k=t}^{t+W'} R_k(ref) * Delta
//                        - r(ref) * W' * Delta) / r(ref), 0 )
//
// capped at cap_factor * x_r to avoid pathological targets.
#pragma once

#include <cstddef>

#include "core/config.h"
#include "video/size_provider.h"
#include "video/video.h"

namespace vbr::core {

class OuterController {
 public:
  explicit OuterController(const CavaConfig& config);

  /// Target buffer level when about to fetch `next_chunk`.
  /// `reference_track` is the track whose sizes preview future demand
  /// (the paper uses a middle track). `visible_chunks` fences the preview
  /// for live streaming (SIZE_MAX = whole video). The preview reads chunk
  /// sizes through `sizes` when given (degraded-metadata operation), the
  /// exact table otherwise.
  [[nodiscard]] double target_buffer_s(
      const video::Video& video, std::size_t reference_track,
      std::size_t next_chunk, std::size_t visible_chunks = SIZE_MAX,
      const video::ChunkSizeProvider* sizes = nullptr) const;

  [[nodiscard]] double base_target_s() const {
    return config_.base_target_buffer_s;
  }

 private:
  CavaConfig config_;
};

}  // namespace vbr::core
