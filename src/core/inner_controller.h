// Inner controller: VBR-aware track selection (paper Section 5.3).
//
// Given the PID output u_t and the bandwidth estimate C_t, pick the track
// minimizing
//
//   Q(l) = sum_{k=t}^{t+N-1} (u_t * Rbar_t(l) - alpha_t * C_t)^2
//        + eta_t * (r(l) - r(l_prev))^2
//
// where Rbar_t(l) is the average bitrate of the next W chunks of track l
// (non-myopic principle P1: a short-term statistical filter smooths VBR
// burstiness so the controller does not mechanically chase per-chunk sizes),
// alpha_t inflates the assumed bandwidth for complex (top-class) chunks and
// deflates it for the rest (differential treatment P2), r(l) is track l's
// average bitrate, and eta_t enables the switch penalty only when adjacent
// chunks are in the same complexity category.
#pragma once

#include <cstddef>

#include "core/complexity_classifier.h"
#include "core/config.h"
#include "video/size_provider.h"
#include "video/video.h"

namespace vbr::core {

class InnerController {
 public:
  explicit InnerController(const CavaConfig& config);

  /// Inputs for one decision.
  struct Inputs {
    const video::Video* video = nullptr;
    const ComplexityClassifier* classifier = nullptr;
    std::size_t next_chunk = 0;
    double u = 1.0;                  ///< PID output.
    double est_bandwidth_bps = 0.0;  ///< C_t.
    int prev_track = -1;
    double buffer_s = 0.0;
    /// Look-ahead fence: chunks at index >= visible_chunks are not yet in
    /// the manifest (live streaming). Defaults to "all of the video".
    std::size_t visible_chunks = SIZE_MAX;
    /// Chunk-size knowledge; null = the exact manifest table.
    const video::ChunkSizeProvider* sizes = nullptr;
  };

  /// Chooses the track for Inputs::next_chunk.
  [[nodiscard]] std::size_t select_track(const Inputs& in) const;

  /// Short-term statistical filter: average bitrate of chunks
  /// [chunk, chunk + W) of track `level`, truncated at the video end and at
  /// the `visible_chunks` fence. Sizes are read through `sizes` when given
  /// (degraded-metadata operation), the exact table otherwise.
  [[nodiscard]] double smoothed_bitrate_bps(
      const video::Video& video, std::size_t level, std::size_t chunk,
      std::size_t visible_chunks = SIZE_MAX,
      const video::ChunkSizeProvider* sizes = nullptr) const;

  /// The objective Q(l) of Eq. (3) for one candidate track.
  [[nodiscard]] double objective(const Inputs& in, std::size_t level,
                                 double alpha) const;

 private:
  /// argmin_l Q(l) for a fixed alpha.
  [[nodiscard]] std::size_t argmin_track(const Inputs& in,
                                         double alpha) const;

  CavaConfig config_;
};

}  // namespace vbr::core
