#include "core/si_ti_classifier.h"

#include <stdexcept>

#include "metrics/stats.h"

namespace vbr::core {

SiTiClassifier::SiTiClassifier(const video::Video& video,
                               std::size_t num_classes)
    : num_classes_(num_classes) {
  if (num_classes_ < 2) {
    throw std::invalid_argument("SiTiClassifier: need >= 2 classes");
  }
  std::vector<double> score;
  score.reserve(video.num_chunks());
  for (std::size_t i = 0; i < video.num_chunks(); ++i) {
    const video::SceneInfo& s = video.scene_info(i);
    score.push_back(s.si / 100.0 + s.ti / 60.0);
  }
  std::vector<double> thresholds;
  thresholds.reserve(num_classes_ - 1);
  for (std::size_t k = 1; k < num_classes_; ++k) {
    thresholds.push_back(vbr::stats::percentile(
        score, 100.0 * static_cast<double>(k) /
                   static_cast<double>(num_classes_)));
  }
  classes_.reserve(score.size());
  for (const double s : score) {
    std::size_t cls = 0;
    while (cls < thresholds.size() && s > thresholds[cls]) {
      ++cls;
    }
    classes_.push_back(cls);
  }
}

double SiTiClassifier::agreement(
    const std::vector<std::size_t>& other) const {
  if (other.size() != classes_.size()) {
    throw std::invalid_argument("SiTiClassifier::agreement: size mismatch");
  }
  std::size_t same = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    same += classes_[i] == other[i] ? 1 : 0;
  }
  return static_cast<double>(same) / static_cast<double>(classes_.size());
}

}  // namespace vbr::core
