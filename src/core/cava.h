// CAVA: Control-theoretic Adaptation for VBR-based ABR streaming — the
// paper's primary contribution (Section 5).
//
// Two controller loops in synergy:
//   - the outer controller (preview control, P3) sets a dynamic target
//     buffer level from the long-term future chunk-size profile;
//   - the inner controller runs a PID feedback block against that target and
//     selects tracks through the VBR-aware optimization that embodies the
//     non-myopic (P1) and differential-treatment (P2) principles, informed
//     by the chunk-size-based complexity classification.
//
// Everything CAVA consumes — per-chunk sizes, track ladder, buffer level,
// bandwidth estimate — is available to DASH/HLS clients today, which is the
// point: the scheme is deployable as-is (the paper ships it as a 520-line
// dash.js rule).
//
// The principle toggles in CavaConfig give the Section 6.4 ablation
// variants: CAVA-p1 (P1 only), CAVA-p12 (P1+P2), CAVA-p123 (all three).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "abr/scheme.h"
#include "core/complexity_classifier.h"
#include "core/config.h"
#include "core/inner_controller.h"
#include "core/outer_controller.h"
#include "core/pid_controller.h"

namespace vbr::core {

class Cava final : public abr::AbrScheme {
 public:
  explicit Cava(CavaConfig config = {});

  [[nodiscard]] abr::Decision decide(const abr::StreamContext& ctx) override;
  void reset() override;
  /// Fills the event's controller block from the most recent decision
  /// (outer target, PID terms, classifier bucket) — the quantities the
  /// paper's Figs. 6–7 plot.
  void annotate_event(obs::DecisionEvent& event) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const CavaConfig& config() const { return config_; }

  /// Diagnostics from the most recent decision (for tests, Fig. 5-style
  /// introspection, and the examples).
  struct Diagnostics {
    double u = 0.0;                 ///< PID output.
    double target_buffer_s = 0.0;   ///< Outer-controller target x_r(t).
    double error_s = 0.0;           ///< PID proportional input x_r - x.
    double integral = 0.0;          ///< PID integral state after the update.
    double alpha = 1.0;             ///< Bandwidth scale applied.
    std::size_t complexity_class = 0;  ///< Classifier bucket of the chunk.
    bool complex_chunk = false;     ///< Next chunk classified Q4.
  };
  [[nodiscard]] const std::optional<Diagnostics>& last_diagnostics() const {
    return last_diagnostics_;
  }

 private:
  /// (Re)binds per-video state when a session starts or the video changes.
  /// The complexity classifier is built from the context's size knowledge:
  /// exact manifest sizes normally, the provider's believed sizes under
  /// degraded metadata (classified once at bind time — the paper's
  /// classification is a per-video preprocessing step, not per-decision).
  void bind_video(const abr::StreamContext& ctx);

  CavaConfig config_;
  PidController pid_;
  InnerController inner_;
  OuterController outer_;

  const video::Video* bound_video_ = nullptr;
  std::optional<ComplexityClassifier> classifier_;
  std::optional<Diagnostics> last_diagnostics_;
};

/// Ablation variant factories (Section 6.4).
[[nodiscard]] std::unique_ptr<Cava> make_cava_p1();
[[nodiscard]] std::unique_ptr<Cava> make_cava_p12();
[[nodiscard]] std::unique_ptr<Cava> make_cava_p123();

}  // namespace vbr::core
