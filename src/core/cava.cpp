#include "core/cava.h"

#include <stdexcept>

#include "core/si_ti_classifier.h"

namespace vbr::core {

Cava::Cava(CavaConfig config)
    : config_(config), pid_(config), inner_(config), outer_(config) {}

void Cava::bind_video(const abr::StreamContext& ctx) {
  const video::Video& video = *ctx.video;
  if (bound_video_ == &video) {
    return;
  }
  bound_video_ = &video;
  if (config_.use_content_classifier) {
    const SiTiClassifier content(video, config_.num_complexity_classes);
    classifier_.emplace(content.classes(), content.num_classes());
  } else if (ctx.sizes != nullptr) {
    // Degraded metadata: classify from the sizes the client believes, not
    // the ground truth it cannot see. Flat beliefs (declared average rates)
    // put every chunk in the bottom class, turning differential treatment
    // off instead of firing it at random.
    const std::size_t ref = video.middle_track();
    std::vector<double> believed(video.num_chunks());
    for (std::size_t i = 0; i < believed.size(); ++i) {
      believed[i] = ctx.sizes->size_bits(video, ref, i);
    }
    classifier_ = ComplexityClassifier::from_reference_sizes(
        believed, ref, config_.num_complexity_classes);
  } else {
    classifier_.emplace(video, video.middle_track(),
                        config_.num_complexity_classes);
  }
  pid_.reset();
}

abr::Decision Cava::decide(const abr::StreamContext& ctx) {
  abr::validate_context(ctx);
  if (ctx.est_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Cava: non-positive bandwidth estimate");
  }
  bind_video(ctx);

  // Outer loop: proactive target buffer from the long-term future profile
  // (fenced at the live edge when streaming live).
  const double target =
      outer_.target_buffer_s(*ctx.video, ctx.video->middle_track(),
                             ctx.next_chunk, ctx.lookahead_limit(),
                             ctx.sizes);

  // PID feedback block against the dynamic target.
  const double u = pid_.update(ctx.buffer_s, target, ctx.now_s,
                               ctx.video->chunk_duration_s());

  // Inner loop: VBR-aware track selection.
  InnerController::Inputs in;
  in.video = ctx.video;
  in.classifier = &*classifier_;
  in.next_chunk = ctx.next_chunk;
  in.u = u;
  in.est_bandwidth_bps = ctx.est_bandwidth_bps;
  in.prev_track = ctx.prev_track;
  in.buffer_s = ctx.buffer_s;
  in.visible_chunks = ctx.lookahead_limit();
  in.sizes = ctx.sizes;
  const std::size_t track = inner_.select_track(in);

  Diagnostics d;
  d.u = u;
  d.target_buffer_s = target;
  d.error_s = target - ctx.buffer_s;
  d.integral = pid_.integral();
  d.complexity_class = classifier_->class_of(ctx.next_chunk);
  d.complex_chunk = classifier_->is_complex(ctx.next_chunk);
  d.alpha = config_.use_differential_treatment
                ? (d.complex_chunk ? config_.alpha_complex
                                   : config_.alpha_simple)
                : 1.0;
  last_diagnostics_ = d;

  return abr::Decision{.track = track};
}

void Cava::annotate_event(obs::DecisionEvent& event) const {
  if (!last_diagnostics_.has_value()) {
    return;
  }
  const Diagnostics& d = *last_diagnostics_;
  obs::ControllerInternals c;
  c.target_buffer_s = d.target_buffer_s;
  c.u = d.u;
  c.error_s = d.error_s;
  c.integral = d.integral;
  c.alpha = d.alpha;
  c.complexity_class = d.complexity_class;
  c.complex_chunk = d.complex_chunk;
  event.controller = c;
}

void Cava::reset() {
  pid_.reset();
  bound_video_ = nullptr;
  classifier_.reset();
  last_diagnostics_.reset();
}

std::string Cava::name() const {
  if (!config_.use_differential_treatment) {
    return "CAVA-p1";
  }
  if (!config_.use_proactive_target) {
    return "CAVA-p12";
  }
  return "CAVA";
}

std::unique_ptr<Cava> make_cava_p1() {
  return std::make_unique<Cava>(cava_p1_config());
}

std::unique_ptr<Cava> make_cava_p12() {
  return std::make_unique<Cava>(cava_p12_config());
}

std::unique_ptr<Cava> make_cava_p123() {
  return std::make_unique<Cava>(cava_p123_config());
}

}  // namespace vbr::core
