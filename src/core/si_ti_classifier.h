// Content-based scene-complexity classifier (the expensive alternative the
// paper's Section 3.1.1 sets aside): classifies chunks by quantiles of their
// source SI/TI statistics instead of chunk sizes.
//
// In this reproduction the SI/TI values come from the synthetic scene model
// (a real deployment would run ITU-T P.910 analysis over raw frames). The
// classifier exists to quantify how well the *deployable* size-based
// classifier approximates ground-truth complexity — see
// bench_ablation_classifier.
#pragma once

#include <cstddef>
#include <vector>

#include "video/video.h"

namespace vbr::core {

class SiTiClassifier {
 public:
  /// Classifies every chunk into `num_classes` quantile classes of the
  /// combined complexity score  si / 100 + ti / 60  (both terms normalized
  /// to their nominal ranges). Throws std::invalid_argument for
  /// num_classes < 2.
  explicit SiTiClassifier(const video::Video& video,
                          std::size_t num_classes = 4);

  [[nodiscard]] std::size_t class_of(std::size_t chunk) const {
    return classes_.at(chunk);
  }
  [[nodiscard]] bool is_complex(std::size_t chunk) const {
    return classes_.at(chunk) == num_classes_ - 1;
  }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] const std::vector<std::size_t>& classes() const {
    return classes_;
  }

  /// Fraction of chunks on which this classifier agrees with another
  /// class sequence (e.g. the size-based classifier's).
  [[nodiscard]] double agreement(
      const std::vector<std::size_t>& other) const;

 private:
  std::size_t num_classes_;
  std::vector<std::size_t> classes_;
};

}  // namespace vbr::core
