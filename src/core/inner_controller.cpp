#include "core/inner_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::core {

InnerController::InnerController(const CavaConfig& config) : config_(config) {
  if (config_.horizon_chunks == 0 || config_.inner_window_s <= 0.0 ||
      config_.alpha_complex <= 0.0 || config_.alpha_simple <= 0.0) {
    throw std::invalid_argument("InnerController: bad config");
  }
}

double InnerController::smoothed_bitrate_bps(
    const video::Video& video, std::size_t level, std::size_t chunk,
    std::size_t visible_chunks, const video::ChunkSizeProvider* sizes) const {
  const auto window_chunks = static_cast<std::size_t>(std::max(
      1.0, std::round(config_.inner_window_s / video.chunk_duration_s())));
  std::size_t end = std::min(chunk + window_chunks, video.num_chunks());
  end = std::max(std::min(end, visible_chunks), chunk + 1);
  double bits = 0.0;
  double duration = 0.0;
  for (std::size_t i = chunk; i < end; ++i) {
    const video::Chunk& c = video.track(level).chunk(i);
    bits += sizes != nullptr ? sizes->size_bits(video, level, i)
                             : c.size_bits;
    duration += c.duration_s;
  }
  return bits / duration;
}

double InnerController::objective(const Inputs& in, std::size_t level,
                                  double alpha) const {
  const video::Video& v = *in.video;
  const double rbar = smoothed_bitrate_bps(v, level, in.next_chunk,
                                           in.visible_chunks, in.sizes);

  // First term: deviation of the required bandwidth from the assumed
  // bandwidth over the N-chunk horizon. Online, u and C are the current
  // values for every k, so the horizon acts as a weight of N on this term
  // relative to the switch penalty. Normalized to Mbps^2 so the two terms
  // are comparable at any bitrate scale.
  constexpr double kMbps = 1e6;
  double q = 0.0;
  const std::size_t horizon = std::min(
      config_.horizon_chunks, v.num_chunks() - in.next_chunk);
  for (std::size_t k = 0; k < horizon; ++k) {
    const double dev =
        (in.u * rbar - alpha * in.est_bandwidth_bps) / kMbps;
    q += dev * dev;
  }

  // Second term: switch penalty in average-track-bitrate units (Section 5.3
  // discusses why r(l) - r(l_prev) is the right unit for VBR).
  if (in.prev_track >= 0) {
    const std::size_t prev = static_cast<std::size_t>(in.prev_track);
    const bool cur_complex = in.classifier->is_complex(in.next_chunk);
    const bool prev_complex =
        in.next_chunk > 0 ? in.classifier->is_complex(in.next_chunk - 1)
                          : cur_complex;
    // eta = 0 when the adjacent chunks differ in category (a quality change
    // across a complexity boundary is not penalized).
    const double eta =
        cur_complex == prev_complex ? config_.eta_same_class : 0.0;
    const double dr = (v.track(level).average_bitrate_bps() -
                       v.track(prev).average_bitrate_bps()) /
                      kMbps;
    q += eta * dr * dr;
  }
  return q;
}

std::size_t InnerController::argmin_track(const Inputs& in,
                                          double alpha) const {
  std::size_t best = 0;
  double best_q = objective(in, 0, alpha);
  for (std::size_t l = 1; l < in.video->num_tracks(); ++l) {
    const double q = objective(in, l, alpha);
    if (q < best_q) {
      best_q = q;
      best = l;
    }
  }
  return best;
}

std::size_t InnerController::select_track(const Inputs& in) const {
  if (in.video == nullptr || in.classifier == nullptr) {
    throw std::invalid_argument("InnerController: null video or classifier");
  }
  if (in.est_bandwidth_bps <= 0.0 || in.u <= 0.0) {
    throw std::invalid_argument("InnerController: non-positive u or bandwidth");
  }

  if (!config_.use_differential_treatment) {
    return argmin_track(in, 1.0);
  }

  const bool complex = in.classifier->is_complex(in.next_chunk);
  double alpha = complex ? config_.alpha_complex : config_.alpha_simple;

  // Optional guard: do not inflate for Q4 when a stall is likely.
  if (complex && config_.inflate_guard_enabled &&
      in.buffer_s < config_.inflate_guard_buffer_s) {
    alpha = 1.0;
  }

  std::size_t chosen = argmin_track(in, alpha);

  // Q1-Q3 heuristic: if deflation lands on a very low level while the buffer
  // is comfortable, retry without deflation (Section 5.3: "avoids choosing
  // unnecessarily low levels").
  if (!complex && alpha < 1.0 &&
      chosen < config_.low_level_threshold &&
      in.buffer_s > config_.no_deflate_buffer_s) {
    chosen = argmin_track(in, 1.0);
  }

  // Buffer-cushion extension of the same heuristic: with several chunk
  // durations of cushion banked, a momentary bandwidth dip need not push the
  // selection all the way to the bottom rung — ride the buffer one level up
  // instead of serving unacceptable quality.
  const double cushion_s = 2.0 * config_.no_deflate_buffer_s;
  if (chosen < config_.low_level_threshold &&
      chosen + 1 < in.video->num_tracks() && in.buffer_s > cushion_s) {
    chosen += 1;
  }
  return chosen;
}

}  // namespace vbr::core
