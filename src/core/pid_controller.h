// PID feedback control block (paper Section 5.2, after PIA [Qin et al.,
// INFOCOM 2017]).
//
// Maintains the player buffer at a (dynamic) target level. The controller
// output u_t is a unitless relative buffer-filling rate, u_t = C_t / R_t:
// picking the next chunk's bitrate as (estimated bandwidth) / u_t steers the
// buffer toward the target. The control law is
//
//   u_t = Kp (x_r(t) - x_t) + Ki * integral(x_r - x) dtau + 1(x_t >= Delta)
//
// where x_t is the buffer level, x_r(t) the target set by the outer
// controller, Delta the chunk duration, and the indicator term linearizes
// the closed loop. The integral is accumulated in wall-clock time with an
// anti-windup clamp, and the output is clamped to a sane range.
#pragma once

#include "core/config.h"

namespace vbr::core {

class PidController {
 public:
  explicit PidController(const CavaConfig& config);

  /// Computes the control output for the current decision.
  /// @param buffer_s        current buffer level x_t (seconds)
  /// @param target_buffer_s target level x_r(t) (seconds)
  /// @param now_s           session clock; integral accumulates over the
  ///                        elapsed time since the previous update
  /// @param chunk_duration_s Delta for the indicator term
  [[nodiscard]] double update(double buffer_s, double target_buffer_s,
                              double now_s, double chunk_duration_s);

  /// Integral state (for tests/diagnostics).
  [[nodiscard]] double integral() const { return integral_; }

  void reset();

 private:
  CavaConfig config_;
  double integral_ = 0.0;
  double last_time_s_ = -1.0;
};

}  // namespace vbr::core
