#include "core/complexity_classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/stats.h"

namespace vbr::core {

namespace {

/// Quantile-classifies `sizes` into `num_classes` classes (Q1..Qn).
std::vector<std::size_t> classify_sizes(const std::vector<double>& sizes,
                                        std::size_t num_classes) {
  // Quantile thresholds at 1/num_classes steps of the size distribution.
  std::vector<double> thresholds;
  thresholds.reserve(num_classes - 1);
  for (std::size_t k = 1; k < num_classes; ++k) {
    thresholds.push_back(vbr::stats::percentile(
        sizes,
        100.0 * static_cast<double>(k) / static_cast<double>(num_classes)));
  }

  std::vector<std::size_t> classes;
  classes.reserve(sizes.size());
  for (const double s : sizes) {
    std::size_t cls = 0;
    while (cls < thresholds.size() && s > thresholds[cls]) {
      ++cls;
    }
    classes.push_back(cls);
  }
  return classes;
}

}  // namespace

ComplexityClassifier::ComplexityClassifier(const video::Video& video,
                                           std::size_t reference_track,
                                           std::size_t num_classes)
    : reference_track_(reference_track), num_classes_(num_classes) {
  if (num_classes_ < 2) {
    throw std::invalid_argument("ComplexityClassifier: need >= 2 classes");
  }
  if (reference_track_ >= video.num_tracks()) {
    throw std::invalid_argument(
        "ComplexityClassifier: reference track out of range");
  }
  classes_ = classify_sizes(video.track(reference_track_).chunk_sizes_bits(),
                            num_classes_);
}

ComplexityClassifier ComplexityClassifier::from_reference_sizes(
    const std::vector<double>& reference_sizes_bits,
    std::size_t reference_track, std::size_t num_classes) {
  if (num_classes < 2) {
    throw std::invalid_argument("ComplexityClassifier: need >= 2 classes");
  }
  if (reference_sizes_bits.empty()) {
    throw std::invalid_argument("ComplexityClassifier: empty size sequence");
  }
  for (const double s : reference_sizes_bits) {
    if (!std::isfinite(s) || s <= 0.0) {
      throw std::invalid_argument(
          "ComplexityClassifier: non-finite or non-positive size");
    }
  }
  ComplexityClassifier c(classify_sizes(reference_sizes_bits, num_classes),
                         num_classes);
  c.reference_track_ = reference_track;
  return c;
}

ComplexityClassifier::ComplexityClassifier(const video::Video& video)
    : ComplexityClassifier(video, video.middle_track(), 4) {}

ComplexityClassifier::ComplexityClassifier(std::vector<std::size_t> classes,
                                           std::size_t num_classes)
    : reference_track_(0),
      num_classes_(num_classes),
      classes_(std::move(classes)) {
  if (num_classes_ < 2) {
    throw std::invalid_argument("ComplexityClassifier: need >= 2 classes");
  }
  if (classes_.empty()) {
    throw std::invalid_argument("ComplexityClassifier: empty class list");
  }
  for (const std::size_t c : classes_) {
    if (c >= num_classes_) {
      throw std::invalid_argument(
          "ComplexityClassifier: class index out of range");
    }
  }
}

std::vector<std::size_t> ComplexityClassifier::complex_chunks() const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i] == num_classes_ - 1) {
      idx.push_back(i);
    }
  }
  return idx;
}

}  // namespace vbr::core
