#include "core/outer_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::core {

OuterController::OuterController(const CavaConfig& config) : config_(config) {
  if (config_.base_target_buffer_s <= 0.0 || config_.outer_window_s <= 0.0 ||
      config_.target_buffer_cap_factor < 1.0) {
    throw std::invalid_argument("OuterController: bad config");
  }
}

double OuterController::target_buffer_s(
    const video::Video& video, std::size_t reference_track,
    std::size_t next_chunk, std::size_t visible_chunks,
    const video::ChunkSizeProvider* sizes) const {
  const double xr = config_.base_target_buffer_s;
  if (!config_.use_proactive_target) {
    return xr;
  }
  if (reference_track >= video.num_tracks()) {
    throw std::invalid_argument("OuterController: bad reference track");
  }
  const video::Track& ref = video.track(reference_track);
  const auto window_chunks = static_cast<std::size_t>(std::max(
      1.0, std::round(config_.outer_window_s / video.chunk_duration_s())));
  const std::size_t end = std::min(
      {next_chunk + window_chunks, video.num_chunks(), visible_chunks});
  if (end <= next_chunk) {
    return xr;
  }

  // Bits the next W' chunks actually need, minus the average-rate bits for
  // the same wall-clock span, converted to seconds of average-rate playback.
  double future_bits = 0.0;
  double span_s = 0.0;
  for (std::size_t i = next_chunk; i < end; ++i) {
    future_bits += sizes != nullptr
                       ? sizes->size_bits(video, reference_track, i)
                       : ref.chunk(i).size_bits;
    span_s += ref.chunk(i).duration_s;
  }
  const double avg_bits = ref.average_bitrate_bps() * span_s;
  const double extra_s =
      std::max((future_bits - avg_bits) / ref.average_bitrate_bps(), 0.0);

  return std::min(xr + extra_s, config_.target_buffer_cap_factor * xr);
}

}  // namespace vbr::core
