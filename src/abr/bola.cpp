#include "abr/bola.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vbr::abr {

Bola::Bola(BolaConfig config) : config_(config) {
  if (config_.reservoir_s <= 0.0 ||
      config_.target_buffer_s <= config_.reservoir_s ||
      config_.insufficient_buffer_chunks < 0) {
    throw std::invalid_argument("Bola: bad config");
  }
}

double Bola::declared_size(const StreamContext& ctx, std::size_t l,
                           std::size_t chunk) const {
  const video::Video& v = *ctx.video;
  const double chunk_s = v.chunk_duration_s();
  switch (config_.size_view) {
    case BolaSizeView::kPeak:
      return v.track(l).peak_bitrate_bps() * chunk_s;
    case BolaSizeView::kAvg:
      return v.track(l).average_bitrate_bps() * chunk_s;
    case BolaSizeView::kSegment:
      return ctx.chunk_size_bits(l, chunk);
  }
  return ctx.chunk_size_bits(l, chunk);
}

Decision Bola::decide(const StreamContext& ctx) {
  validate_context(ctx);
  const video::Video& v = *ctx.video;
  const double chunk_s = v.chunk_duration_s();
  const std::size_t num_tracks = v.num_tracks();

  // Utilities, V and gp come from the declared *ladder* (stable across the
  // stream, as dash.js derives them from manifest bitrates); the size view
  // only affects the score denominators below.
  std::vector<double> utility(num_tracks);
  for (std::size_t l = 0; l < num_tracks; ++l) {
    utility[l] = std::log(v.track(l).average_bitrate_bps() /
                          v.track(0).average_bitrate_bps());
  }
  const double v_max = utility.back();

  std::vector<double> size(num_tracks);
  for (std::size_t l = 0; l < num_tracks; ++l) {
    size[l] = declared_size(ctx, l, ctx.next_chunk);
  }

  // Derive gp and V so that: the lowest track's score crosses zero at the
  // reservoir, and the top track's score crosses zero at the buffer target.
  const double target_chunks = std::max(
      std::min(config_.target_buffer_s, ctx.max_buffer_s) / chunk_s, 2.0);
  const double reservoir_chunks =
      std::clamp(config_.reservoir_s / chunk_s, 0.5, target_chunks - 1.0);
  const double gp = std::max(
      v_max * reservoir_chunks / (target_chunks - reservoir_chunks), 1e-6);
  const double big_v = target_chunks / (v_max + gp);

  const double q_chunks = ctx.buffer_s / chunk_s;

  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t l = 0; l < num_tracks; ++l) {
    const double score = (big_v * (utility[l] + gp) - q_chunks) / size[l];
    if (score > best_score) {
      best_score = score;
      best = l;
    }
  }

  // All scores negative: the buffer is above the BOLA target; idle until the
  // top candidate's score returns to zero.
  if (best_score < 0.0) {
    const double resume_chunks = big_v * (utility[best] + gp);
    const double wait_s = std::max((q_chunks - resume_chunks) * chunk_s, 0.1);
    return Decision{.track = best, .wait_s = wait_s};
  }

  // BOLA-E insufficient-buffer rule: with a thin buffer, do not pick a track
  // whose declared bitrate exceeds the estimated throughput.
  const double q_floor =
      static_cast<double>(config_.insufficient_buffer_chunks);
  if (q_chunks < q_floor && ctx.est_bandwidth_bps > 0.0) {
    while (best > 0 &&
           size[best] / chunk_s > ctx.est_bandwidth_bps) {
      --best;
    }
  }

  // BOLA-E oscillation guard: move up at most one level per decision.
  if (config_.cap_upswitch && ctx.prev_track >= 0 &&
      best > static_cast<std::size_t>(ctx.prev_track) + 1) {
    best = static_cast<std::size_t>(ctx.prev_track) + 1;
  }
  return Decision{.track = best};
}

std::string Bola::name() const {
  switch (config_.size_view) {
    case BolaSizeView::kPeak:
      return "BOLA-E (peak)";
    case BolaSizeView::kAvg:
      return "BOLA-E (avg)";
    case BolaSizeView::kSegment:
      return "BOLA-E (seg)";
  }
  return "BOLA-E";
}

}  // namespace vbr::abr
