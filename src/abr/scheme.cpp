#include "abr/scheme.h"

#include <cmath>
#include <stdexcept>

namespace vbr::abr {

Decision FixedTrackScheme::decide(const StreamContext& ctx) {
  validate_context(ctx);
  if (track_ >= ctx.video->num_tracks()) {
    throw std::out_of_range("FixedTrackScheme: track out of range");
  }
  return Decision{.track = track_};
}

std::size_t highest_track_below(const video::Video& v, double budget_bps) {
  std::size_t best = 0;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    if (v.track(l).average_bitrate_bps() <= budget_bps) {
      best = l;
    }
  }
  return best;
}

void validate_context(const StreamContext& ctx) {
  if (ctx.video == nullptr) {
    throw std::invalid_argument("StreamContext: null video");
  }
  if (ctx.next_chunk >= ctx.video->num_chunks()) {
    throw std::invalid_argument("StreamContext: chunk index out of range");
  }
  if (!(ctx.buffer_s >= 0.0) || std::isinf(ctx.buffer_s)) {
    throw std::invalid_argument(
        "StreamContext: buffer must be finite and non-negative");
  }
  if (std::isnan(ctx.est_bandwidth_bps) || std::isinf(ctx.est_bandwidth_bps)) {
    throw std::invalid_argument(
        "StreamContext: non-finite bandwidth estimate");
  }
  if (!std::isfinite(ctx.now_s)) {
    throw std::invalid_argument("StreamContext: non-finite clock");
  }
}

}  // namespace vbr::abr
