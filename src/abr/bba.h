// BBA-1: buffer-based adaptation (Huang et al., SIGCOMM 2014).
//
// A myopic scheme: buffer occupancy is mapped through a "chunk map" onto an
// allowed chunk size, and the highest track whose *next chunk* fits is
// selected. The chunk map spans from the average chunk size of the lowest
// track (at the reservoir) to that of the highest track (at the top of the
// cushion). The paper uses BBA-1 to illustrate how myopic schemes pick high
// tracks for small (simple) chunks and low tracks for large (complex) ones —
// the opposite of what VBR content needs (Section 4, Fig. 4).
#pragma once

#include "abr/scheme.h"

namespace vbr::abr {

struct BbaConfig {
  double reservoir_s = 10.0;       ///< Below this buffer: lowest track.
  double cushion_fraction = 0.9;   ///< Cushion tops out at this fraction of
                                   ///< the max buffer.
};

class Bba final : public AbrScheme {
 public:
  explicit Bba(BbaConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "BBA-1"; }

 private:
  BbaConfig config_;
};

/// BBA-0: the simpler variant that maps buffer occupancy linearly onto the
/// *track ladder* (declared average bitrates), never looking at individual
/// chunk sizes. Included for completeness of the buffer-based family.
class Bba0 final : public AbrScheme {
 public:
  explicit Bba0(BbaConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "BBA-0"; }

 private:
  BbaConfig config_;
};

}  // namespace vbr::abr
