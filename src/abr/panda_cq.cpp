#include "abr/panda_cq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vbr::abr {

namespace {

struct Candidate {
  bool feasible = false;
  double predicted_stall_s = 1e300;  ///< Horizon stall when infeasible.
  double criterion_value = -1e300;   ///< Sum or min quality.
  double tiebreak_quality = -1e300;  ///< Secondary quality criterion.
  double bits = 1e300;
  int switches = 1 << 20;
  std::size_t first_track = 0;

  /// True if this candidate beats `other` lexicographically.
  [[nodiscard]] bool better_than(const Candidate& other) const {
    if (feasible != other.feasible) return feasible;
    // Among infeasible sequences, damage control first: least stall.
    if (!feasible && predicted_stall_s != other.predicted_stall_s) {
      return predicted_stall_s < other.predicted_stall_s;
    }
    if (criterion_value != other.criterion_value) {
      return criterion_value > other.criterion_value;
    }
    if (tiebreak_quality != other.tiebreak_quality) {
      return tiebreak_quality > other.tiebreak_quality;
    }
    if (bits != other.bits) return bits < other.bits;
    return switches < other.switches;
  }
};

struct WindowSearch {
  const video::Video* video = nullptr;
  const StreamContext* ctx = nullptr;  ///< Size-knowledge view of the chunks.
  std::size_t window = 0;
  std::size_t visible_limit = 0;  ///< Chunks beyond this are unannounced.
  double bandwidth_bps = 0.0;
  double max_buffer_s = 0.0;
  PandaCriterion criterion = PandaCriterion::kMaxMin;
  video::QualityMetric metric = video::QualityMetric::kVmafPhone;

  Candidate best;

  [[nodiscard]] double quality(std::size_t track, std::size_t chunk) const {
    return video->track(track).chunk(chunk).quality.get(metric);
  }

  void search(std::size_t depth, std::size_t chunk, double buffer_s,
              double stall_s, double sum_q, double min_q, double bits,
              int switches, int prev_track, std::size_t first_track) {
    if (depth == window || chunk >= visible_limit) {
      Candidate c;
      c.feasible = stall_s == 0.0;
      c.predicted_stall_s = stall_s;
      c.criterion_value =
          criterion == PandaCriterion::kMaxSum ? sum_q : min_q;
      c.tiebreak_quality =
          criterion == PandaCriterion::kMaxSum ? min_q : sum_q;
      c.bits = bits;
      c.switches = switches;
      c.first_track = first_track;
      if (c.better_than(best)) {
        best = c;
      }
      return;
    }
    for (std::size_t l = 0; l < video->num_tracks(); ++l) {
      const double size = ctx->chunk_size_bits(l, chunk);
      const double dl_s = size / bandwidth_bps;
      const double step_stall = std::max(dl_s - buffer_s, 0.0);
      double buf = std::max(buffer_s - dl_s, 0.0) +
                   video->chunk_duration_s();
      buf = std::min(buf, max_buffer_s);
      const double q = quality(l, chunk);
      search(depth + 1, chunk + 1, buf, stall_s + step_stall, sum_q + q,
             std::min(min_q, q), bits + size,
             switches + (prev_track >= 0 &&
                                 l != static_cast<std::size_t>(prev_track)
                             ? 1
                             : 0),
             static_cast<int>(l), depth == 0 ? l : first_track);
    }
  }
};

}  // namespace

PandaCq::PandaCq(PandaCqConfig config) : config_(config) {
  if (config_.window == 0 || config_.bandwidth_safety <= 0.0) {
    throw std::invalid_argument("PandaCq: bad config");
  }
}

Decision PandaCq::decide(const StreamContext& ctx) {
  validate_context(ctx);
  if (ctx.est_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("PandaCq: non-positive bandwidth estimate");
  }
  WindowSearch s;
  s.video = ctx.video;
  s.ctx = &ctx;
  s.window = config_.window;
  s.visible_limit = ctx.lookahead_limit();
  s.bandwidth_bps = ctx.est_bandwidth_bps * config_.bandwidth_safety;
  s.max_buffer_s = ctx.max_buffer_s;
  s.criterion = config_.criterion;
  s.metric = config_.metric;
  s.search(0, ctx.next_chunk, ctx.buffer_s, /*stall_s=*/0.0, 0.0, 1e300,
           0.0, 0, ctx.prev_track, 0);
  return Decision{.track = s.best.first_track};
}

std::string PandaCq::name() const {
  return config_.criterion == PandaCriterion::kMaxSum ? "PANDA/CQ max-sum"
                                                      : "PANDA/CQ max-min";
}

}  // namespace vbr::abr
