// dash.js-style rules: the plain throughput rule and the DYNAMIC hybrid
// (throughput rule at thin buffers, BOLA once the buffer is healthy) — the
// player default that the paper's Section 6.8 testbed builds on.
#pragma once

#include <memory>

#include "abr/bola.h"
#include "abr/scheme.h"

namespace vbr::abr {

struct ThroughputRuleConfig {
  double bandwidth_safety = 0.9;  ///< dash.js default throughput discount.
};

/// Highest track whose average bitrate fits the discounted estimate.
class ThroughputRule final : public AbrScheme {
 public:
  explicit ThroughputRule(ThroughputRuleConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return "ThroughputRule";
  }

 private:
  ThroughputRuleConfig config_;
};

struct DynamicConfig {
  /// Buffer level above which BOLA takes over (dash.js: 10 s).
  double bola_threshold_s = 10.0;
  ThroughputRuleConfig throughput;
  BolaConfig bola;
};

/// dash.js DYNAMIC: throughput-driven while the buffer is thin (estimates
/// are the only signal), buffer-driven (BOLA) once it is healthy.
class DynamicRule final : public AbrScheme {
 public:
  explicit DynamicRule(DynamicConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "DYNAMIC"; }

 private:
  DynamicConfig config_;
  ThroughputRule throughput_;
  Bola bola_;
};

}  // namespace vbr::abr
