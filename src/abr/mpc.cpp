#include "abr/mpc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vbr::abr {

namespace {

/// Recursively enumerates track sequences, tracking buffer evolution and the
/// partial QoE, and records the best first-step decision.
struct HorizonSearch {
  const video::Video* video = nullptr;
  const StreamContext* ctx = nullptr;  ///< Size-knowledge view of the chunks.
  std::size_t first_chunk = 0;
  std::size_t horizon = 0;
  std::size_t visible_limit = 0;  ///< Chunks beyond this are unannounced.
  double bandwidth_bps = 0.0;
  double max_buffer_s = 0.0;
  double lambda = 0.0;
  double mu = 0.0;

  double best_qoe = -1e300;
  std::size_t best_first = 0;

  [[nodiscard]] double quality_mbps(std::size_t track) const {
    return video->track(track).average_bitrate_bps() / 1e6;
  }

  void search(std::size_t depth, std::size_t chunk, double buffer_s,
              double prev_quality, double qoe, std::size_t first_track) {
    if (depth == horizon || chunk >= visible_limit) {
      if (qoe > best_qoe) {
        best_qoe = qoe;
        best_first = first_track;
      }
      return;
    }
    for (std::size_t l = 0; l < video->num_tracks(); ++l) {
      const double dl_s = ctx->chunk_size_bits(l, chunk) / bandwidth_bps;
      const double rebuffer = std::max(dl_s - buffer_s, 0.0);
      double buf = std::max(buffer_s - dl_s, 0.0) +
                   video->chunk_duration_s();
      buf = std::min(buf, max_buffer_s);
      const double q = quality_mbps(l);
      const double smooth =
          prev_quality >= 0.0 ? std::abs(q - prev_quality) : 0.0;
      const double step_qoe = q - lambda * smooth - mu * rebuffer;
      search(depth + 1, chunk + 1, buf, q, qoe + step_qoe,
             depth == 0 ? l : first_track);
    }
  }
};

}  // namespace

Mpc::Mpc(MpcConfig config) : config_(config) {
  if (config_.horizon == 0 || config_.lambda < 0.0 ||
      config_.mu_rebuffer < 0.0 || config_.error_window == 0) {
    throw std::invalid_argument("Mpc: bad config");
  }
}

Decision Mpc::decide(const StreamContext& ctx) {
  validate_context(ctx);
  double bw = ctx.est_bandwidth_bps;
  if (bw <= 0.0) {
    throw std::invalid_argument("Mpc: non-positive bandwidth estimate");
  }
  // The error history is measured against the *raw* estimate; discounting
  // the prediction itself would feed back into ever-larger errors.
  last_prediction_bps_ = bw;
  if (config_.robust && !relative_errors_.empty()) {
    const double max_err =
        *std::max_element(relative_errors_.begin(), relative_errors_.end());
    bw /= (1.0 + max_err);
  }

  HorizonSearch s;
  s.video = ctx.video;
  s.ctx = &ctx;
  s.first_chunk = ctx.next_chunk;
  s.horizon = config_.horizon;
  s.visible_limit = ctx.lookahead_limit();
  s.bandwidth_bps = bw;
  s.max_buffer_s = ctx.max_buffer_s;
  s.lambda = config_.lambda;
  s.mu = config_.mu_rebuffer;
  const double prev_q =
      ctx.prev_track >= 0
          ? ctx.video->track(static_cast<std::size_t>(ctx.prev_track))
                    .average_bitrate_bps() /
                1e6
          : -1.0;
  s.search(0, ctx.next_chunk, ctx.buffer_s, prev_q, 0.0, 0);
  return Decision{.track = s.best_first};
}

void Mpc::on_chunk_downloaded(const StreamContext& ctx, std::size_t track,
                              double download_s) {
  if (!config_.robust || last_prediction_bps_ <= 0.0) {
    return;
  }
  // The error history compares against *actual* delivered bytes — a real
  // client counts what it received, regardless of manifest size knowledge.
  const double actual_bps =
      ctx.video->chunk_size_bits(track, ctx.next_chunk) / download_s;
  const double rel_err =
      std::abs(actual_bps - last_prediction_bps_) / last_prediction_bps_;
  relative_errors_.push_back(rel_err);
  if (relative_errors_.size() > config_.error_window) {
    relative_errors_.pop_front();
  }
}

void Mpc::reset() {
  last_prediction_bps_ = 0.0;
  relative_errors_.clear();
}

MpcConfig mpc_config() { return MpcConfig{}; }

MpcConfig robust_mpc_config() {
  MpcConfig c;
  c.robust = true;
  return c;
}

}  // namespace vbr::abr
