#include "abr/mpc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vbr::abr {

namespace {

/// Reference engine: recursively enumerates every track sequence, tracking
/// buffer evolution and the partial QoE, and records the best first-step
/// decision. Kept verbatim as the differential-testing oracle for the
/// pruned engine below.
struct HorizonSearch {
  const video::Video* video = nullptr;
  const StreamContext* ctx = nullptr;  ///< Size-knowledge view of the chunks.
  std::size_t first_chunk = 0;
  std::size_t horizon = 0;
  std::size_t visible_limit = 0;  ///< Chunks beyond this are unannounced.
  double bandwidth_bps = 0.0;
  double max_buffer_s = 0.0;
  double lambda = 0.0;
  double mu = 0.0;

  double best_qoe = -1e300;
  std::size_t best_first = 0;

  [[nodiscard]] double quality_mbps(std::size_t track) const {
    return video->track(track).average_bitrate_bps() / 1e6;
  }

  void search(std::size_t depth, std::size_t chunk, double buffer_s,
              double prev_quality, double qoe, std::size_t first_track) {
    if (depth == horizon || chunk >= visible_limit) {
      if (qoe > best_qoe) {
        best_qoe = qoe;
        best_first = first_track;
      }
      return;
    }
    for (std::size_t l = 0; l < video->num_tracks(); ++l) {
      const double dl_s = ctx->chunk_size_bits(l, chunk) / bandwidth_bps;
      const double rebuffer = std::max(dl_s - buffer_s, 0.0);
      double buf = std::max(buffer_s - dl_s, 0.0) +
                   video->chunk_duration_s();
      buf = std::min(buf, max_buffer_s);
      const double q = quality_mbps(l);
      const double smooth =
          prev_quality >= 0.0 ? std::abs(q - prev_quality) : 0.0;
      const double step_qoe = q - lambda * smooth - mu * rebuffer;
      search(depth + 1, chunk + 1, buf, q, qoe + step_qoe,
             depth == 0 ? l : first_track);
    }
  }
};

/// Pruned engine: depth-first search over the same tree, on per-decision
/// memoized size/quality tables, with greedy child ordering below the first
/// level and admissible upper-bound pruning. Produces bit-identical
/// (best_qoe, best_first) to HorizonSearch:
///   - every step value and accumulation uses the exact expressions (and
///     hence rounding) of the reference, over identical inputs (providers
///     are deterministic per (track, chunk), so batched reads agree with
///     per-node reads);
///   - the bound adds the maximum per-step quality once per remaining
///     level using the same float additions a real path would take, so by
///     monotonicity of rounding it upper-bounds every leaf below — a
///     subtree is only skipped when no leaf in it can beat the incumbent;
///   - the winner is the lowest first track among sequences attaining the
///     maximal QoE, which only depth-0 visit order decides; depth 0 stays
///     in ascending-track order, so reordering deeper levels is free.
struct PrunedSearch {
  const double* quality = nullptr;  ///< L per-track qualities (Mbps).
  const double* dl = nullptr;       ///< K x L download seconds, depth-major.
  double* child_qoe = nullptr;      ///< K x L arena row per depth.
  double* child_buf = nullptr;
  std::size_t* order = nullptr;
  std::size_t levels = 0;  ///< K: effective search depth.
  std::size_t tracks = 0;  ///< L.
  double chunk_duration_s = 0.0;
  double max_buffer_s = 0.0;
  double lambda = 0.0;
  double mu = 0.0;
  double max_quality = 0.0;

  double best_qoe = -1e300;
  std::size_t best_first = 0;

  /// True if a leaf below a node with partial QoE `qoe` and `remaining`
  /// levels to go could still beat the incumbent. The repeated addition
  /// (not qoe + remaining * max_quality) matters: it reproduces the
  /// rounding of the real accumulation chain, keeping the bound admissible
  /// in floating point, not just in exact arithmetic.
  [[nodiscard]] bool can_improve(double qoe, std::size_t remaining) const {
    double bound = qoe;
    for (std::size_t r = 0; r < remaining; ++r) {
      if (bound > best_qoe) {
        return true;  // additions only grow the bound
      }
      bound += max_quality;
    }
    return bound > best_qoe;
  }

  void search(std::size_t depth, double buffer_s, double prev_quality,
              double qoe, std::size_t first_track) {
    const double* dl_row = dl + depth * tracks;
    double* cq = child_qoe + depth * tracks;
    double* cb = child_buf + depth * tracks;
    std::size_t* ord = order + depth * tracks;
    for (std::size_t l = 0; l < tracks; ++l) {
      const double dl_s = dl_row[l];
      const double rebuffer = std::max(dl_s - buffer_s, 0.0);
      double buf = std::max(buffer_s - dl_s, 0.0) + chunk_duration_s;
      buf = std::min(buf, max_buffer_s);
      const double q = quality[l];
      const double smooth =
          prev_quality >= 0.0 ? std::abs(q - prev_quality) : 0.0;
      const double step_qoe = q - lambda * smooth - mu * rebuffer;
      cq[l] = qoe + step_qoe;
      cb[l] = buf;
      ord[l] = l;
    }
    if (depth > 0) {
      // Greedy ordering: the most promising subtree first, so the
      // incumbent tightens early and the bound prunes the rest.
      std::sort(ord, ord + tracks, [&](std::size_t a, std::size_t b) {
        if (cq[a] != cq[b]) {
          return cq[a] > cq[b];
        }
        return a < b;
      });
    }
    const std::size_t remaining = levels - depth - 1;
    for (std::size_t j = 0; j < tracks; ++j) {
      const std::size_t l = ord[j];
      const double candidate = cq[l];
      if (remaining == 0) {
        if (candidate > best_qoe) {
          best_qoe = candidate;
          best_first = depth == 0 ? l : first_track;
        }
        continue;
      }
      if (!can_improve(candidate, remaining)) {
        continue;
      }
      search(depth + 1, cb[l], quality[l], candidate,
             depth == 0 ? l : first_track);
    }
  }
};

}  // namespace

Mpc::Mpc(MpcConfig config) : config_(config) {
  if (config_.horizon == 0 || config_.lambda < 0.0 ||
      config_.mu_rebuffer < 0.0 || config_.error_window == 0) {
    throw std::invalid_argument("Mpc: bad config");
  }
}

Decision Mpc::decide(const StreamContext& ctx) {
  validate_context(ctx);
  double bw = ctx.est_bandwidth_bps;
  if (bw <= 0.0) {
    throw std::invalid_argument("Mpc: non-positive bandwidth estimate");
  }
  // The error history is measured against the *raw* estimate; discounting
  // the prediction itself would feed back into ever-larger errors.
  last_prediction_bps_ = bw;
  if (config_.robust && !relative_errors_.empty()) {
    const double max_err =
        *std::max_element(relative_errors_.begin(), relative_errors_.end());
    bw /= (1.0 + max_err);
  }
  return config_.reference_search ? decide_reference(ctx, bw)
                                  : decide_pruned(ctx, bw);
}

Decision Mpc::decide_reference(const StreamContext& ctx,
                               double bandwidth_bps) {
  HorizonSearch s;
  s.video = ctx.video;
  s.ctx = &ctx;
  s.first_chunk = ctx.next_chunk;
  s.horizon = config_.horizon;
  s.visible_limit = ctx.lookahead_limit();
  s.bandwidth_bps = bandwidth_bps;
  s.max_buffer_s = ctx.max_buffer_s;
  s.lambda = config_.lambda;
  s.mu = config_.mu_rebuffer;
  const double prev_q =
      ctx.prev_track >= 0
          ? ctx.video->track(static_cast<std::size_t>(ctx.prev_track))
                    .average_bitrate_bps() /
                1e6
          : -1.0;
  s.search(0, ctx.next_chunk, ctx.buffer_s, prev_q, 0.0, 0);
  last_best_qoe_ = s.best_qoe;
  return Decision{.track = s.best_first};
}

Decision Mpc::decide_pruned(const StreamContext& ctx, double bandwidth_bps) {
  const video::Video& video = *ctx.video;
  const std::size_t tracks = video.num_tracks();
  const std::size_t first = ctx.next_chunk;
  const std::size_t visible = ctx.lookahead_limit();
  // The reference leaf condition (depth == horizon || chunk >= visible)
  // truncates every path at the same depth.
  const std::size_t levels =
      visible > first ? std::min(config_.horizon, visible - first) : 0;
  if (levels == 0) {
    // Zero-step window: the enumerator scores the empty sequence (QoE 0)
    // and keeps the initial first track of 0.
    last_best_qoe_ = 0.0;
    return Decision{.track = 0};
  }

  quality_scratch_.resize(tracks);
  for (std::size_t l = 0; l < tracks; ++l) {
    quality_scratch_[l] = video.track(l).average_bitrate_bps() / 1e6;
  }
  const double max_quality = *std::max_element(quality_scratch_.begin(),
                                               quality_scratch_.end());

  // One batched size query per track for the whole window, then the same
  // size / bandwidth division the reference performs per node.
  size_scratch_.resize(levels);
  dl_scratch_.resize(levels * tracks);
  for (std::size_t l = 0; l < tracks; ++l) {
    ctx.fill_chunk_sizes(l, first, first + levels, size_scratch_.data());
    for (std::size_t k = 0; k < levels; ++k) {
      dl_scratch_[k * tracks + l] = size_scratch_[k] / bandwidth_bps;
    }
  }
  child_qoe_.resize(levels * tracks);
  child_buf_.resize(levels * tracks);
  order_.resize(levels * tracks);

  PrunedSearch s;
  s.quality = quality_scratch_.data();
  s.dl = dl_scratch_.data();
  s.child_qoe = child_qoe_.data();
  s.child_buf = child_buf_.data();
  s.order = order_.data();
  s.levels = levels;
  s.tracks = tracks;
  s.chunk_duration_s = video.chunk_duration_s();
  s.max_buffer_s = ctx.max_buffer_s;
  s.lambda = config_.lambda;
  s.mu = config_.mu_rebuffer;
  s.max_quality = max_quality;
  const double prev_q =
      ctx.prev_track >= 0
          ? quality_scratch_[static_cast<std::size_t>(ctx.prev_track)]
          : -1.0;
  s.search(0, ctx.buffer_s, prev_q, 0.0, 0);
  last_best_qoe_ = s.best_qoe;
  return Decision{.track = s.best_first};
}

void Mpc::on_chunk_downloaded(const StreamContext& ctx, std::size_t track,
                              double download_s) {
  if (!config_.robust || last_prediction_bps_ <= 0.0) {
    return;
  }
  // The error history compares against *actual* delivered bytes — a real
  // client counts what it received, regardless of manifest size knowledge.
  const double actual_bps =
      ctx.video->chunk_size_bits(track, ctx.next_chunk) / download_s;
  const double rel_err =
      std::abs(actual_bps - last_prediction_bps_) / last_prediction_bps_;
  relative_errors_.push_back(rel_err);
  if (relative_errors_.size() > config_.error_window) {
    relative_errors_.pop_front();
  }
}

void Mpc::reset() {
  last_prediction_bps_ = 0.0;
  last_best_qoe_ = 0.0;
  relative_errors_.clear();
}

MpcConfig mpc_config() { return MpcConfig{}; }

MpcConfig robust_mpc_config() {
  MpcConfig c;
  c.robust = true;
  return c;
}

}  // namespace vbr::abr
