// RBA: rate-based adaptation (after Zhang et al., INFOCOM 2017).
//
// A myopic rate-based scheme: pick the highest track such that, after
// downloading the next chunk at the estimated bandwidth, the buffer still
// holds at least `min_chunks_after` chunks of content.
#pragma once

#include "abr/scheme.h"

namespace vbr::abr {

struct RbaConfig {
  int min_chunks_after = 4;  ///< Buffer floor, in chunks, after the download.
};

class Rba final : public AbrScheme {
 public:
  explicit Rba(RbaConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "RBA"; }

 private:
  RbaConfig config_;
};

}  // namespace vbr::abr
