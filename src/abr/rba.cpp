#include "abr/rba.h"

#include <stdexcept>

namespace vbr::abr {

Rba::Rba(RbaConfig config) : config_(config) {
  if (config_.min_chunks_after < 0) {
    throw std::invalid_argument("Rba: negative buffer floor");
  }
}

Decision Rba::decide(const StreamContext& ctx) {
  validate_context(ctx);
  const video::Video& v = *ctx.video;
  const double floor_s =
      static_cast<double>(config_.min_chunks_after) * v.chunk_duration_s();

  std::size_t best = 0;
  for (std::size_t l = 0; l < v.num_tracks(); ++l) {
    const double download_s =
        ctx.chunk_size_bits(l, ctx.next_chunk) / ctx.est_bandwidth_bps;
    // Buffer after the download (it drains while downloading) plus the chunk
    // just fetched must stay above the floor.
    const double buffer_after =
        ctx.buffer_s - download_s + v.chunk_duration_s();
    if (buffer_after >= floor_s) {
      best = l;
    }
  }
  return Decision{.track = best};
}

}  // namespace vbr::abr
