// FESTIVE (Jiang et al., CoNEXT 2012) — the classic rate-based scheme with
// stability machinery, cited by the paper among rate-based ABR work.
//
// Single-client core (the fairness-oriented randomized scheduling is out of
// scope for trace replay):
//   - target = highest track whose average bitrate fits a safety-discounted
//     harmonic-mean bandwidth estimate;
//   - switch up only after `up_patience` consecutive chunks at which the
//     higher track was affordable, and only one level at a time;
//   - switch down immediately, one level at a time (drop straight to the
//     target only when two levels or more above it);
//   - a stability score caps switching frequency: no more than one switch
//     per `min_switch_interval` chunks.
#pragma once

#include "abr/scheme.h"

namespace vbr::abr {

struct FestiveConfig {
  double bandwidth_safety = 0.85;
  int up_patience = 3;            ///< Affordable-chunk streak before up-switch.
  int min_switch_interval = 2;    ///< Chunks between switches.
};

class Festive final : public AbrScheme {
 public:
  explicit Festive(FestiveConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "FESTIVE"; }

 private:
  FestiveConfig config_;
  int up_streak_ = 0;
  int chunks_since_switch_ = 1 << 20;
};

}  // namespace vbr::abr
