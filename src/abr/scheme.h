// Common interface for ABR rate-adaptation schemes.
//
// A scheme is asked, before each chunk download, which track to fetch next.
// It sees exactly what a DASH/HLS client sees: the manifest (track ladder
// with declared bitrates and the per-chunk segment size table), its own
// playback state (buffer level, position), and an application-level
// bandwidth estimate. Schemes never see quality scores unless they are
// explicitly quality-aware (PANDA/CQ), mirroring the deployability
// discussion in the paper.
#pragma once

#include <cstddef>
#include <string>

#include "obs/event.h"
#include "video/size_provider.h"
#include "video/video.h"

namespace vbr::abr {

/// Everything a scheme may consult when deciding the next chunk's track.
struct StreamContext {
  const video::Video* video = nullptr;  ///< Manifest view (never null).
  /// Chunk-size knowledge: what the client believes chunks cost. Null means
  /// the exact manifest table (today's behaviour). Schemes must read sizes
  /// through chunk_size_bits() below, never from the video directly, so
  /// degraded-metadata experiments can swap the knowledge source.
  const video::ChunkSizeProvider* sizes = nullptr;
  std::size_t next_chunk = 0;           ///< Index of the chunk to decide.
  double buffer_s = 0.0;                ///< Current playout buffer (seconds).
  double est_bandwidth_bps = 0.0;       ///< Application-level estimate.
  int prev_track = -1;                  ///< Track of the previous chunk; -1 if none.
  double now_s = 0.0;                   ///< Session clock.
  double max_buffer_s = 100.0;          ///< Player buffer capacity.
  double startup_latency_s = 10.0;      ///< Data needed before playback starts.
  bool in_startup = false;              ///< True until playback begins.
  /// Number of chunks announced/produced so far. In VoD this is the whole
  /// video; in live streaming (the paper's future-work setting) schemes can
  /// only see manifest entries up to the live edge, so look-ahead windows
  /// must truncate here. 0 means "everything" for backward compatibility.
  std::size_t visible_chunks = 0;

  /// Chunks a look-ahead may legally read: min(visible, total).
  [[nodiscard]] std::size_t lookahead_limit() const {
    const std::size_t total = video->num_chunks();
    return visible_chunks == 0 ? total : std::min(visible_chunks, total);
  }

  /// Believed size (bits) of chunk `i` of track `level`: the provider's
  /// estimate when one is attached, the exact table otherwise.
  [[nodiscard]] double chunk_size_bits(std::size_t level,
                                       std::size_t i) const {
    return sizes != nullptr ? sizes->size_bits(*video, level, i)
                            : video->chunk_size_bits(level, i);
  }

  /// Batch form of chunk_size_bits over chunks [begin, end): bit-identical
  /// values, one provider dispatch per row. Look-ahead searches hoist their
  /// size reads through this so a provider is consulted once per
  /// (track, window) instead of once per search-node visit.
  void fill_chunk_sizes(std::size_t level, std::size_t begin,
                        std::size_t end, double* out) const {
    if (sizes != nullptr) {
      sizes->fill_size_bits(*video, level, begin, end, out);
      return;
    }
    for (std::size_t i = begin; i < end; ++i) {
      out[i - begin] = video->chunk_size_bits(level, i);
    }
  }
};

/// A scheme's answer: which track to download, optionally after idling.
/// A positive `wait_s` models players (e.g. BOLA-E) that pause between
/// downloads even though buffer capacity remains.
struct Decision {
  std::size_t track = 0;
  double wait_s = 0.0;
};

/// Base class for all rate-adaptation schemes.
class AbrScheme {
 public:
  virtual ~AbrScheme() = default;

  /// Decides the track for ctx.next_chunk.
  [[nodiscard]] virtual Decision decide(const StreamContext& ctx) = 0;

  /// Informs the scheme of the completed download it requested.
  virtual void on_chunk_downloaded(const StreamContext& ctx,
                                   std::size_t track, double download_s) {
    (void)ctx;
    (void)track;
    (void)download_s;
  }

  /// Clears per-session state.
  virtual void reset() {}

  /// Telemetry hook: enriches the event for the scheme's *most recent*
  /// decision with scheme-specific internals (CAVA fills the controller
  /// block; plain schemes have nothing to add). Called by the session loops
  /// only when a trace sink is attached — never on the null-sink hot path.
  virtual void annotate_event(obs::DecisionEvent& event) const {
    (void)event;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Trivial scheme that always picks one fixed track (baseline / testing).
class FixedTrackScheme final : public AbrScheme {
 public:
  explicit FixedTrackScheme(std::size_t track) : track_(track) {}

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return "fixed-" + std::to_string(track_);
  }

 private:
  std::size_t track_;
};

/// Highest track whose *average* bitrate is <= budget_bps; 0 if none.
[[nodiscard]] std::size_t highest_track_below(const video::Video& v,
                                              double budget_bps);

/// Validates that a context is well-formed: non-null video, chunk index in
/// range, and finite, non-negative buffer/clock plus a non-NaN, non-infinite
/// bandwidth estimate (a NaN slips past every `<= 0` guard and would
/// silently corrupt the decision arithmetic). Throws std::invalid_argument
/// otherwise. Schemes call this at the top of decide().
void validate_context(const StreamContext& ctx);

}  // namespace vbr::abr
