// PANDA/CQ: quality-aware window optimization (after Li et al., MMSys 2014,
// "Streaming video over HTTP with consistent quality").
//
// Unlike every other baseline, PANDA/CQ consumes per-chunk *quality* scores
// (information today's DASH/HLS manifests do not carry — the paper includes
// it as an upper-bound-style quality-aware comparator). Over a window of N
// future chunks it enumerates track sequences, keeps those that are feasible
// (no predicted rebuffering at the estimated bandwidth, using actual chunk
// sizes), and picks by one of two criteria:
//   - max-sum: maximize the total quality of the N chunks;
//   - max-min: maximize the minimum quality of the N chunks (the variant the
//     paper reports as the stronger one).
// Ties break toward fewer bits (lower data usage), then fewer switches.
#pragma once

#include <cstddef>

#include "abr/scheme.h"
#include "video/chunk.h"

namespace vbr::abr {

enum class PandaCriterion { kMaxSum, kMaxMin };

struct PandaCqConfig {
  std::size_t window = 5;  ///< Chunks considered per decision.
  PandaCriterion criterion = PandaCriterion::kMaxMin;
  video::QualityMetric metric = video::QualityMetric::kVmafPhone;
  /// Safety margin on the bandwidth estimate when checking feasibility.
  double bandwidth_safety = 1.0;
};

class PandaCq final : public AbrScheme {
 public:
  explicit PandaCq(PandaCqConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  PandaCqConfig config_;
};

}  // namespace vbr::abr
