#include "abr/festive.h"

#include <stdexcept>

namespace vbr::abr {

Festive::Festive(FestiveConfig config) : config_(config) {
  if (config_.bandwidth_safety <= 0.0 || config_.up_patience < 1 ||
      config_.min_switch_interval < 0) {
    throw std::invalid_argument("Festive: bad config");
  }
}

Decision Festive::decide(const StreamContext& ctx) {
  validate_context(ctx);
  if (ctx.est_bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Festive: non-positive bandwidth estimate");
  }
  const video::Video& v = *ctx.video;
  const std::size_t target = highest_track_below(
      v, config_.bandwidth_safety * ctx.est_bandwidth_bps);

  if (ctx.prev_track < 0) {
    // First chunk: start at the target directly.
    chunks_since_switch_ = 0;
    return Decision{.track = target};
  }
  const auto prev = static_cast<std::size_t>(ctx.prev_track);

  std::size_t chosen = prev;
  if (target > prev) {
    ++up_streak_;
    if (up_streak_ >= config_.up_patience &&
        chunks_since_switch_ >= config_.min_switch_interval) {
      chosen = prev + 1;  // gradual up-switch
    }
  } else if (target < prev) {
    up_streak_ = 0;
    // Down-switches are immediate; step when close, jump when far.
    chosen = target + 1 < prev ? target : prev - 1;
  } else {
    up_streak_ = 0;
  }

  if (chosen != prev) {
    up_streak_ = 0;
    chunks_since_switch_ = 0;
  } else {
    ++chunks_since_switch_;
  }
  return Decision{.track = chosen};
}

void Festive::reset() {
  up_streak_ = 0;
  chunks_since_switch_ = 1 << 20;
}

}  // namespace vbr::abr
