// MPC and RobustMPC (Yin et al., SIGCOMM 2015).
//
// Model-predictive control: enumerate track sequences over a short horizon,
// simulate the buffer forward using the *actual* per-chunk sizes (the VBR
// recommendation the paper follows for all baselines) and the bandwidth
// estimate, and maximize a QoE objective
//
//   QoE = sum_k q(l_k) - lambda * sum_k |q(l_k) - q(l_{k-1})| - mu * rebuffer
//
// with q(l) the track's average bitrate in Mbps. Only the first decision of
// the optimizing sequence is executed (receding horizon).
//
// RobustMPC divides the bandwidth estimate by (1 + max relative prediction
// error observed over the last 5 chunks), which markedly reduces rebuffering
// under dynamic bandwidth at some cost in quality.
//
// Two search engines produce bit-identical decisions (DESIGN.md §10):
//   - the pruned engine (default): per-decision size/quality tables filled
//     by one batched provider query per track, an arena-backed depth-first
//     search whose scratch is reused across decisions, greedy child
//     ordering below the first level, and admissible upper-bound pruning
//     (remaining QoE can never exceed one max-quality step per remaining
//     level, evaluated with the same rounding as the real accumulation);
//   - the reference engine: the original recursive enumerator over all
//     tracks^horizon sequences, kept as the differential-testing oracle.
// The differential suite (tests/test_mpc_differential.cpp) pins that both
// engines return the same track and the same searched QoE on randomized
// ladders, horizons, and size-knowledge modes.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "abr/scheme.h"

namespace vbr::abr {

struct MpcConfig {
  std::size_t horizon = 5;      ///< Chunks to look ahead (paper: 5).
  double lambda = 1.0;          ///< Smoothness penalty weight.
  double mu_rebuffer = 8.0;     ///< Rebuffer penalty (QoE per second).
  bool robust = false;          ///< RobustMPC bandwidth discounting.
  std::size_t error_window = 5; ///< Prediction-error memory (robust mode).
  /// Use the exhaustive reference enumerator instead of the pruned search.
  /// Decisions and QoE are bit-identical either way; the flag exists so
  /// tests and benches can cross-check the optimized hot path against the
  /// original implementation.
  bool reference_search = false;
};

class Mpc : public AbrScheme {
 public:
  explicit Mpc(MpcConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  void on_chunk_downloaded(const StreamContext& ctx, std::size_t track,
                           double download_s) override;
  void reset() override;
  [[nodiscard]] std::string name() const override {
    return config_.robust ? "RobustMPC" : "MPC";
  }

  /// QoE of the optimizing sequence found by the most recent decide() —
  /// diagnostics and the differential suite's same-QoE assertion. 0 before
  /// any decision.
  [[nodiscard]] double last_best_qoe() const { return last_best_qoe_; }

  [[nodiscard]] const MpcConfig& config() const { return config_; }

 private:
  [[nodiscard]] Decision decide_reference(const StreamContext& ctx,
                                          double bandwidth_bps);
  [[nodiscard]] Decision decide_pruned(const StreamContext& ctx,
                                       double bandwidth_bps);

  MpcConfig config_;
  double last_prediction_bps_ = 0.0;  ///< Estimate used for the last decision.
  double last_best_qoe_ = 0.0;
  std::deque<double> relative_errors_;

  // Arena-backed per-decision scratch for the pruned engine, reused across
  // decisions and sessions (capacity persists; every cell read by a search
  // is written first by the same decide() call, so no decision state leaks
  // — the scratch-reuse regression tests pin this).
  std::vector<double> quality_scratch_;  ///< Per-track quality (Mbps).
  std::vector<double> dl_scratch_;       ///< K x L download seconds.
  std::vector<double> size_scratch_;     ///< Batched per-track size rows.
  std::vector<double> child_qoe_;        ///< K x L candidate partial QoE.
  std::vector<double> child_buf_;        ///< K x L candidate buffers.
  std::vector<std::size_t> order_;       ///< K x L child visit order.
};

/// Differential-testing oracle: an Mpc pinned to the original recursive
/// enumerator. Same config semantics, same name(), same decisions — only
/// the search implementation differs.
class ReferenceMpc final : public Mpc {
 public:
  explicit ReferenceMpc(MpcConfig config = {})
      : Mpc(with_reference_search(config)) {}

 private:
  static MpcConfig with_reference_search(MpcConfig config) {
    config.reference_search = true;
    return config;
  }
};

/// Convenience factories matching the paper's two variants.
[[nodiscard]] MpcConfig mpc_config();
[[nodiscard]] MpcConfig robust_mpc_config();

}  // namespace vbr::abr
