// MPC and RobustMPC (Yin et al., SIGCOMM 2015).
//
// Model-predictive control: enumerate track sequences over a short horizon,
// simulate the buffer forward using the *actual* per-chunk sizes (the VBR
// recommendation the paper follows for all baselines) and the bandwidth
// estimate, and maximize a QoE objective
//
//   QoE = sum_k q(l_k) - lambda * sum_k |q(l_k) - q(l_{k-1})| - mu * rebuffer
//
// with q(l) the track's average bitrate in Mbps. Only the first decision of
// the optimizing sequence is executed (receding horizon).
//
// RobustMPC divides the bandwidth estimate by (1 + max relative prediction
// error observed over the last 5 chunks), which markedly reduces rebuffering
// under dynamic bandwidth at some cost in quality.
#pragma once

#include <cstddef>
#include <deque>

#include "abr/scheme.h"

namespace vbr::abr {

struct MpcConfig {
  std::size_t horizon = 5;      ///< Chunks to look ahead (paper: 5).
  double lambda = 1.0;          ///< Smoothness penalty weight.
  double mu_rebuffer = 8.0;     ///< Rebuffer penalty (QoE per second).
  bool robust = false;          ///< RobustMPC bandwidth discounting.
  std::size_t error_window = 5; ///< Prediction-error memory (robust mode).
};

class Mpc final : public AbrScheme {
 public:
  explicit Mpc(MpcConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  void on_chunk_downloaded(const StreamContext& ctx, std::size_t track,
                           double download_s) override;
  void reset() override;
  [[nodiscard]] std::string name() const override {
    return config_.robust ? "RobustMPC" : "MPC";
  }

 private:
  MpcConfig config_;
  double last_prediction_bps_ = 0.0;  ///< Estimate used for the last decision.
  std::deque<double> relative_errors_;
};

/// Convenience factories matching the paper's two variants.
[[nodiscard]] MpcConfig mpc_config();
[[nodiscard]] MpcConfig robust_mpc_config();

}  // namespace vbr::abr
