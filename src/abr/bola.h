// BOLA-E (Spiteri et al., BOLA INFOCOM 2016; BOLA-E MMSys 2018).
//
// Lyapunov-style buffer-based adaptation: with buffer level Q (in chunks),
// pick the track m maximizing (V * (v_m + gp) - Q) / S_m, where v_m =
// ln(S_m / S_lowest) is the track utility and S_m the declared chunk size.
// If every score is negative the player idles (pauses between downloads) —
// which is why BOLA-E shows the lowest data usage in the paper's dash.js
// study (Section 6.8).
//
// The paper evaluates three "declared size" views for VBR content:
//   - peak:    S_m = track peak bitrate x chunk duration (HLS-style
//              worst-case declaration; most conservative)
//   - avg:     S_m = track average bitrate x chunk duration (most
//              aggressive)
//   - seg:     S_m = the actual size of the next chunk (per-segment sizes,
//              as the BOLA paper suggests for VBR)
//
// BOLA-E extensions modeled: the insufficient-buffer startup rule (while the
// buffer is thin, do not outrun the throughput estimate) and one-level-up
// switch capping to suppress oscillation.
#pragma once

#include "abr/scheme.h"

namespace vbr::abr {

/// Which per-track size the utility and score use.
enum class BolaSizeView { kPeak, kAvg, kSegment };

struct BolaConfig {
  BolaSizeView size_view = BolaSizeView::kSegment;
  /// Buffer (seconds) below which the lowest track is forced — the BOLA
  /// reservoir used to derive gamma*p. dash.js derives this from its
  /// minimum-buffer setting (~8-10 s).
  double reservoir_s = 8.0;
  /// Buffer level (seconds) at which the top track's score reaches zero —
  /// the BOLA buffer target. dash.js v2.7 defaults to a stable buffer time
  /// of 12 s, 30 s at top quality; 30 s reproduces its steady state (and its
  /// pausing well below the 100 s player cap, the source of BOLA-E's low
  /// data usage in the paper's Section 6.8 study).
  double target_buffer_s = 30.0;
  /// Cap up-switches to one level per decision (BOLA-E oscillation guard).
  bool cap_upswitch = true;
  /// Insufficient-buffer rule: while buffer < this many chunks, do not pick
  /// a track whose declared bitrate exceeds the bandwidth estimate.
  int insufficient_buffer_chunks = 2;
};

class Bola final : public AbrScheme {
 public:
  explicit Bola(BolaConfig config = {});

  [[nodiscard]] Decision decide(const StreamContext& ctx) override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Declared size (bits) of chunk `chunk` at track `l` under the size view
  /// (the kSegment view reads through the context's size knowledge).
  [[nodiscard]] double declared_size(const StreamContext& ctx, std::size_t l,
                                     std::size_t chunk) const;

  BolaConfig config_;
};

}  // namespace vbr::abr
