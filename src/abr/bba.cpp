#include "abr/bba.h"

#include <stdexcept>

namespace vbr::abr {

Bba::Bba(BbaConfig config) : config_(config) {
  if (config_.reservoir_s <= 0.0 || config_.cushion_fraction <= 0.0 ||
      config_.cushion_fraction > 1.0) {
    throw std::invalid_argument("Bba: bad config");
  }
}

Decision Bba::decide(const StreamContext& ctx) {
  validate_context(ctx);
  const video::Video& v = *ctx.video;
  const std::size_t top = v.num_tracks() - 1;
  const double chunk_s = v.chunk_duration_s();

  // Average chunk sizes of the ladder extremes define the chunk map range.
  const double size_min = v.track(0).average_bitrate_bps() * chunk_s;
  const double size_max = v.track(top).average_bitrate_bps() * chunk_s;

  const double cushion_top = config_.cushion_fraction * ctx.max_buffer_s;
  if (ctx.buffer_s <= config_.reservoir_s) {
    return Decision{.track = 0};
  }
  if (ctx.buffer_s >= cushion_top) {
    return Decision{.track = top};
  }
  // Linear chunk map across the cushion.
  const double frac = (ctx.buffer_s - config_.reservoir_s) /
                      (cushion_top - config_.reservoir_s);
  const double allowed_size = size_min + frac * (size_max - size_min);

  // Highest track whose *believed next chunk* fits in the allowed size.
  std::size_t best = 0;
  for (std::size_t l = 0; l <= top; ++l) {
    if (ctx.chunk_size_bits(l, ctx.next_chunk) <= allowed_size) {
      best = l;
    }
  }
  return Decision{.track = best};
}

Bba0::Bba0(BbaConfig config) : config_(config) {
  if (config_.reservoir_s <= 0.0 || config_.cushion_fraction <= 0.0 ||
      config_.cushion_fraction > 1.0) {
    throw std::invalid_argument("Bba0: bad config");
  }
}

Decision Bba0::decide(const StreamContext& ctx) {
  validate_context(ctx);
  const video::Video& v = *ctx.video;
  const std::size_t top = v.num_tracks() - 1;

  const double cushion_top = config_.cushion_fraction * ctx.max_buffer_s;
  if (ctx.buffer_s <= config_.reservoir_s) {
    return Decision{.track = 0};
  }
  if (ctx.buffer_s >= cushion_top) {
    return Decision{.track = top};
  }
  // Map the cushion position onto the declared average-bitrate range.
  const double frac = (ctx.buffer_s - config_.reservoir_s) /
                      (cushion_top - config_.reservoir_s);
  const double lo = v.track(0).average_bitrate_bps();
  const double hi = v.track(top).average_bitrate_bps();
  return Decision{.track = highest_track_below(v, lo + frac * (hi - lo))};
}

}  // namespace vbr::abr
