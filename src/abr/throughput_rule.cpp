#include "abr/throughput_rule.h"

#include <stdexcept>

namespace vbr::abr {

ThroughputRule::ThroughputRule(ThroughputRuleConfig config)
    : config_(config) {
  if (config_.bandwidth_safety <= 0.0) {
    throw std::invalid_argument("ThroughputRule: bad safety factor");
  }
}

Decision ThroughputRule::decide(const StreamContext& ctx) {
  validate_context(ctx);
  if (ctx.est_bandwidth_bps <= 0.0) {
    throw std::invalid_argument(
        "ThroughputRule: non-positive bandwidth estimate");
  }
  return Decision{.track = highest_track_below(
                      *ctx.video,
                      config_.bandwidth_safety * ctx.est_bandwidth_bps)};
}

DynamicRule::DynamicRule(DynamicConfig config)
    : config_(config),
      throughput_(config.throughput),
      bola_(config.bola) {
  if (config_.bola_threshold_s < 0.0) {
    throw std::invalid_argument("DynamicRule: negative threshold");
  }
}

Decision DynamicRule::decide(const StreamContext& ctx) {
  validate_context(ctx);
  if (ctx.buffer_s >= config_.bola_threshold_s) {
    return bola_.decide(ctx);
  }
  return throughput_.decide(ctx);
}

void DynamicRule::reset() {
  throughput_.reset();
  bola_.reset();
}

}  // namespace vbr::abr
