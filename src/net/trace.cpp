#include "net/trace.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace vbr::net {

Trace::Trace(std::string name, double sample_period_s,
             std::vector<double> bandwidth_bps)
    : name_(std::move(name)),
      sample_period_s_(sample_period_s),
      bandwidth_bps_(std::move(bandwidth_bps)) {
  if (sample_period_s_ <= 0.0) {
    throw std::invalid_argument("Trace: non-positive sample period");
  }
  if (bandwidth_bps_.empty()) {
    throw std::invalid_argument("Trace: empty trace");
  }
  double sum = 0.0;
  double max_bps = 0.0;
  for (const double b : bandwidth_bps_) {
    if (b < 0.0 || !std::isfinite(b)) {
      throw std::invalid_argument("Trace: invalid bandwidth sample");
    }
    sum += b;
    max_bps = std::max(max_bps, b);
  }
  if (max_bps == 0.0) {
    throw std::invalid_argument("Trace: all-zero trace cannot be replayed");
  }
  avg_bps_ = sum / static_cast<double>(bandwidth_bps_.size());
}

double Trace::bandwidth_at(double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("Trace::bandwidth_at: negative time");
  }
  const double wrapped = std::fmod(t, duration_s());
  auto idx = static_cast<std::size_t>(wrapped / sample_period_s_);
  if (idx >= bandwidth_bps_.size()) {
    idx = bandwidth_bps_.size() - 1;  // guard fmod edge at exact duration
  }
  return bandwidth_bps_[idx];
}

double Trace::download_duration_s(double start_s, double bits) const {
  if (bits <= 0.0) {
    throw std::invalid_argument("Trace::download_duration_s: bits must be > 0");
  }
  if (start_s < 0.0) {
    throw std::invalid_argument("Trace::download_duration_s: negative start");
  }
  double remaining = bits;
  double t = start_s;
  // Walk sample boundaries, consuming bandwidth * dt bits per step.
  while (true) {
    const double bw = bandwidth_at(t);
    const double wrapped = std::fmod(t, duration_s());
    const double sample_end =
        (std::floor(wrapped / sample_period_s_) + 1.0) * sample_period_s_;
    const double dt = sample_end - wrapped;
    if (bw > 0.0 && remaining <= bw * dt) {
      return (t - start_s) + remaining / bw;
    }
    remaining -= bw * dt;
    t += dt;
  }
}

double Trace::average_bandwidth_bps(double start_s, double window_s) const {
  if (window_s <= 0.0) {
    throw std::invalid_argument("Trace::average_bandwidth_bps: bad window");
  }
  // Integrate in sample-aligned steps.
  double t = start_s;
  const double end = start_s + window_s;
  double bits = 0.0;
  while (t < end) {
    const double wrapped = std::fmod(t, duration_s());
    const double sample_end =
        (std::floor(wrapped / sample_period_s_) + 1.0) * sample_period_s_;
    const double dt = std::min(sample_end - wrapped, end - t);
    bits += bandwidth_at(t) * dt;
    t += dt;
  }
  return bits / window_s;
}

}  // namespace vbr::net
