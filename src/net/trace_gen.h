// Synthetic network trace generators.
//
// Substitutes for the paper's two trace sets:
//  - LTE: 200 cellular traces captured on a coast-to-coast drive, per-1 s
//    throughput. Modeled as a Markov-modulated process over link-condition
//    states (outage / poor / fair / good / excellent) with lognormal
//    per-second jitter — highly dynamic, heavy-tailed, with occasional
//    outages, as cellular drive traces are.
//  - FCC: 200 fixed-broadband traces from the FCC Measuring Broadband
//    America dataset, per-5 s throughput. Modeled as a slowly varying AR(1)
//    process around a per-trace base rate with rare congestion dips —
//    much smoother than LTE, as the paper notes.
//
// All generation is deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"

namespace vbr::net {

/// LTE generator parameters.
struct LteTraceParams {
  double duration_s = 1200.0;  ///< >= 18 min in the paper; 20 min default.
  double sample_period_s = 1.0;
  double mean_dwell_s = 8.0;   ///< Mean sojourn in one link state.
  /// Per-trace overall scale spread (lognormal sigma): some drives are in
  /// good coverage, some poor.
  double trace_scale_sigma = 0.30;
};

/// FCC broadband generator parameters.
struct FccTraceParams {
  double duration_s = 1200.0;
  double sample_period_s = 5.0;
  double min_base_mbps = 1.5;   ///< Slowest broadband tier.
  double max_base_mbps = 12.0;  ///< Fastest tier (clipped lognormal).
  double dip_prob = 0.02;       ///< Per-sample chance of a congestion dip.
};

/// Generates one LTE-like trace. Deterministic in `seed`.
[[nodiscard]] Trace generate_lte_trace(std::uint64_t seed,
                                       const LteTraceParams& params = {});

/// Generates one FCC-like broadband trace. Deterministic in `seed`.
[[nodiscard]] Trace generate_fcc_trace(std::uint64_t seed,
                                       const FccTraceParams& params = {});

/// The full LTE set (paper: 200 traces).
[[nodiscard]] std::vector<Trace> make_lte_trace_set(
    std::size_t count = 200, std::uint64_t seed = 7,
    const LteTraceParams& params = {});

/// The full FCC set (paper: 200 traces).
[[nodiscard]] std::vector<Trace> make_fcc_trace_set(
    std::size_t count = 200, std::uint64_t seed = 11,
    const FccTraceParams& params = {});

}  // namespace vbr::net
