// Trace file I/O.
//
// Lets users replay their own bandwidth measurements (e.g. real drive-test
// captures or FCC MBA exports) instead of the synthetic generators. The text
// format is one line of metadata followed by one throughput sample per line:
//
//   VBR-TRACE/1 <name> <sample_period_s>
//   <bandwidth_bps>
//   <bandwidth_bps>
//   ...
//
// Lines starting with '#' are comments and are skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/trace.h"

namespace vbr::net {

/// Writes `t` in trace text format.
void write_trace(std::ostream& os, const Trace& t);

/// Parses a trace. Throws std::runtime_error on malformed input.
[[nodiscard]] Trace read_trace(std::istream& is);

/// Serializes to / parses from strings.
[[nodiscard]] std::string to_trace_string(const Trace& t);
[[nodiscard]] Trace from_trace_string(const std::string& text);

/// Writes a whole trace set to a directory, one file per trace, named
/// `<name>.trace`. Returns the file paths. Throws std::runtime_error if a
/// file cannot be opened.
std::vector<std::string> write_trace_set(const std::string& directory,
                                         const std::vector<Trace>& traces);

/// Reads every `.trace` file in `paths`.
[[nodiscard]] std::vector<Trace> read_trace_files(
    const std::vector<std::string>& paths);

}  // namespace vbr::net
