// Network fault injection (deterministic, seeded).
//
// Real ABR sessions see more adversity than bandwidth variation: requests
// fail before the first byte (DNS/TCP/TLS errors, 5xx), connections drop
// mid-transfer, and servers stall without sending bytes until the client
// times out. The fault model injects these per-request outcomes on top of
// the trace replay so the session loop can exercise retry/backoff/resume
// logic under reproducible conditions.
//
// Determinism: outcomes are a pure function of (seed, stream, chunk index,
// attempt number) via counter-based hashing — no mutable RNG state — so the
// same seed yields the same fault sequence regardless of call order, across
// the sequential and event-driven (multi-client) session loops alike.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vbr::net {

/// What happened to one download attempt.
enum class FaultKind : std::uint8_t {
  kNone = 0,     ///< The attempt completes normally.
  kConnectFail,  ///< Hard failure before the first byte arrives.
  kMidDrop,      ///< Connection drop after a random fraction of the bytes.
  kTimeout,      ///< Server sends no bytes; client gives up after a timeout.
};

/// Per-request fault probabilities and time costs. All probabilities 0
/// (the default) disables injection entirely — the zero-fault path is a
/// strict no-op on the simulator.
struct FaultConfig {
  double connect_failure_prob = 0.0;  ///< P(hard failure before first byte).
  double mid_drop_prob = 0.0;         ///< P(drop mid-transfer).
  double timeout_prob = 0.0;          ///< P(response stall / timeout).
  /// Wall-clock time burned learning of a hard connection failure
  /// (connect timeout, RST round-trip).
  double connect_fail_delay_s = 1.0;
  /// Server-stall duration charged when the retry policy sets no explicit
  /// per-request timeout.
  double timeout_s = 4.0;
  std::uint64_t seed = 1;  ///< Deterministic fault stream seed.

  /// True if any fault kind can fire.
  [[nodiscard]] bool any() const {
    return connect_failure_prob > 0.0 || mid_drop_prob > 0.0 ||
           timeout_prob > 0.0;
  }

  /// Throws std::invalid_argument on probabilities outside [0, 1], a
  /// combined probability above 1, or non-positive delays.
  void validate() const;
};

/// Drawn outcome for one (chunk, attempt) request.
struct FaultOutcome {
  FaultKind kind = FaultKind::kNone;
  /// kMidDrop only: fraction of the requested bytes delivered before the
  /// drop, in (0, 1).
  double drop_fraction = 0.0;
};

/// Stateless fault source. Copyable; a default-constructed model is
/// disabled. `stream` decorrelates multiple clients sharing one config
/// (multi-client runs salt it with the client index).
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(const FaultConfig& config, std::uint64_t stream = 0);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Outcome of attempt `attempt` (0-based) at fetching chunk
  /// `chunk_index`. Always kNone when disabled.
  [[nodiscard]] FaultOutcome outcome(std::size_t chunk_index,
                                     std::size_t attempt) const;

  /// Deterministic backoff jitter multiplier in [1 - jitter, 1 + jitter],
  /// drawn from the same keyed stream (jitter in [0, 1)).
  [[nodiscard]] double jitter_multiplier(std::size_t chunk_index,
                                         std::size_t attempt,
                                         double jitter) const;

 private:
  FaultConfig config_{};
  std::uint64_t stream_ = 0;
  bool enabled_ = false;
};

}  // namespace vbr::net
