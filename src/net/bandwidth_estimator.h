// Application-level bandwidth estimators.
//
// ABR logic sees the network only through per-chunk download throughput. The
// paper standardizes on the harmonic mean of the last 5 chunk throughputs
// (robust to outliers; used by MPC and the paper's dash.js module); EWMA and
// sliding-mean estimators are provided for comparison, and an oracle with
// controlled error supports the Section 6.7 sensitivity study (see
// error_model.h).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

namespace vbr::net {

/// Interface: consumes per-chunk download observations, produces a bandwidth
/// estimate in bits/second.
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Reports a completed chunk download.
  /// @param bits        chunk size in bits
  /// @param duration_s  wall-clock download time (> 0)
  /// @param now_s       absolute session time at completion
  virtual void on_chunk_downloaded(double bits, double duration_s,
                                   double now_s) = 0;

  /// Current estimate (bps). Implementations return a conservative default
  /// until the first observation. `now_s` lets oracle estimators look up the
  /// true bandwidth.
  [[nodiscard]] virtual double estimate_bps(double now_s) const = 0;

  /// Clears history for a fresh session.
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Harmonic mean of the last `window` chunk throughputs (paper default: 5).
class HarmonicMeanEstimator final : public BandwidthEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window = 5,
                                 double initial_bps = 1e6);

  void on_chunk_downloaded(double bits, double duration_s,
                           double now_s) override;
  [[nodiscard]] double estimate_bps(double now_s) const override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "harmonic-mean"; }

  /// Most recent per-chunk throughput samples (newest last).
  [[nodiscard]] const std::deque<double>& samples() const { return samples_; }

 private:
  std::size_t window_;
  double initial_bps_;
  std::deque<double> samples_;
};

/// Exponentially weighted moving average of chunk throughputs.
class EwmaEstimator final : public BandwidthEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.3, double initial_bps = 1e6);

  void on_chunk_downloaded(double bits, double duration_s,
                           double now_s) override;
  [[nodiscard]] double estimate_bps(double now_s) const override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  double initial_bps_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Arithmetic mean of the last `window` chunk throughputs.
class SlidingMeanEstimator final : public BandwidthEstimator {
 public:
  explicit SlidingMeanEstimator(std::size_t window = 5,
                                double initial_bps = 1e6);

  void on_chunk_downloaded(double bits, double duration_s,
                           double now_s) override;
  [[nodiscard]] double estimate_bps(double now_s) const override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "sliding-mean"; }

 private:
  std::size_t window_;
  double initial_bps_;
  std::deque<double> samples_;
};

/// Convenience: the paper's default estimator.
[[nodiscard]] std::unique_ptr<BandwidthEstimator> make_default_estimator();

}  // namespace vbr::net
