// Bandwidth traces and trace replay.
//
// A trace is a piecewise-constant bandwidth time series (the paper's LTE set
// is per-1 s, the FCC broadband set per-5 s). Replay integrates bandwidth
// over time to answer "how long does downloading B bits take starting at t",
// which is all the streaming simulator needs. Traces loop when a session
// outlives them (the paper's traces are >= 18 min for ~10 min videos, so
// looping is rare and only triggered by heavy stalling).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vbr::net {

/// A piecewise-constant bandwidth trace.
class Trace {
 public:
  /// @param name           identifier for reporting
  /// @param sample_period_s duration of each sample (1 s LTE, 5 s FCC)
  /// @param bandwidth_bps  per-sample bandwidth; must be non-empty, all
  ///                       samples >= 0, and at least one sample > 0
  Trace(std::string name, double sample_period_s,
        std::vector<double> bandwidth_bps);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double sample_period_s() const { return sample_period_s_; }
  [[nodiscard]] std::size_t num_samples() const {
    return bandwidth_bps_.size();
  }
  [[nodiscard]] double duration_s() const {
    return sample_period_s_ * static_cast<double>(bandwidth_bps_.size());
  }
  [[nodiscard]] const std::vector<double>& samples_bps() const {
    return bandwidth_bps_;
  }

  /// Instantaneous bandwidth at absolute time t >= 0 (looping past the end).
  [[nodiscard]] double bandwidth_at(double t) const;

  /// Mean bandwidth over the whole trace.
  [[nodiscard]] double average_bandwidth_bps() const { return avg_bps_; }

  /// Time needed to download `bits` starting at absolute time `start_s`.
  /// Zero-bandwidth stretches simply elapse. `bits` must be > 0.
  [[nodiscard]] double download_duration_s(double start_s, double bits) const;

  /// Average bandwidth over the window [start_s, start_s + window_s).
  [[nodiscard]] double average_bandwidth_bps(double start_s,
                                             double window_s) const;

 private:
  std::string name_;
  double sample_period_s_;
  std::vector<double> bandwidth_bps_;
  double avg_bps_ = 0.0;
};

}  // namespace vbr::net
