#include "net/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace vbr::net {

namespace {

constexpr const char* kMagic = "VBR-TRACE/1";

}  // namespace

void write_trace(std::ostream& os, const Trace& t) {
  os << kMagic << " " << t.name() << " " << std::setprecision(12)
     << t.sample_period_s() << "\n";
  for (const double s : t.samples_bps()) {
    os << s << "\n";
  }
}

Trace read_trace(std::istream& is) {
  std::string magic;
  std::string name;
  double period = 0.0;
  if (!(is >> magic) || magic != kMagic) {
    throw std::runtime_error("trace: bad magic");
  }
  if (!(is >> name >> period)) {
    throw std::runtime_error("trace: bad header");
  }
  std::vector<double> samples;
  std::string line;
  std::getline(is, line);  // consume the rest of the header line
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    double v = 0.0;
    if (!(ls >> v)) {
      throw std::runtime_error("trace: bad sample line '" + line + "'");
    }
    samples.push_back(v);
  }
  try {
    return Trace(name, period, std::move(samples));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("trace: ") + e.what());
  }
}

std::string to_trace_string(const Trace& t) {
  std::ostringstream oss;
  write_trace(oss, t);
  return oss.str();
}

Trace from_trace_string(const std::string& text) {
  std::istringstream iss(text);
  return read_trace(iss);
}

std::vector<std::string> write_trace_set(const std::string& directory,
                                         const std::vector<Trace>& traces) {
  std::vector<std::string> paths;
  paths.reserve(traces.size());
  for (const Trace& t : traces) {
    const std::string path = directory + "/" + t.name() + ".trace";
    std::ofstream out(path);
    if (!out) {
      throw std::runtime_error("trace: cannot open " + path);
    }
    write_trace(out, t);
    paths.push_back(path);
  }
  return paths;
}

std::vector<Trace> read_trace_files(const std::vector<std::string>& paths) {
  std::vector<Trace> traces;
  traces.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("trace: cannot open " + path);
    }
    traces.push_back(read_trace(in));
  }
  return traces;
}

}  // namespace vbr::net
