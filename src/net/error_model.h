// Controlled bandwidth-prediction error (paper Section 6.7).
//
// The sensitivity study replaces the estimator with an oracle perturbed by a
// uniform relative error: if the true bandwidth at decision time is C_t, the
// prediction is drawn uniformly from C_t * (1 +/- err). err = 0 is a perfect
// oracle; the paper sweeps err in {0, 25%, 50%}.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "net/bandwidth_estimator.h"
#include "net/trace.h"

namespace vbr::net {

/// Oracle estimator with uniform relative error, reading the true bandwidth
/// from the replayed trace. The caller must keep the trace alive for the
/// estimator's lifetime.
class NoisyOracleEstimator final : public BandwidthEstimator {
 public:
  /// @param trace  the trace being replayed (not owned)
  /// @param err    relative error bound in [0, 1)
  /// @param seed   deterministic RNG seed
  NoisyOracleEstimator(const Trace& trace, double err, std::uint64_t seed);

  void on_chunk_downloaded(double bits, double duration_s,
                           double now_s) override;
  [[nodiscard]] double estimate_bps(double now_s) const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  const Trace* trace_;
  double err_;
  std::uint64_t seed_;
  mutable std::mt19937_64 rng_;
};

}  // namespace vbr::net
