#include "net/bandwidth_estimator.h"

#include <stdexcept>

namespace vbr::net {

namespace {

double throughput_of(double bits, double duration_s) {
  if (bits <= 0.0 || duration_s <= 0.0) {
    throw std::invalid_argument(
        "BandwidthEstimator: non-positive bits or duration");
  }
  return bits / duration_s;
}

}  // namespace

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window,
                                             double initial_bps)
    : window_(window), initial_bps_(initial_bps) {
  if (window_ == 0 || initial_bps_ <= 0.0) {
    throw std::invalid_argument("HarmonicMeanEstimator: bad params");
  }
}

void HarmonicMeanEstimator::on_chunk_downloaded(double bits,
                                                double duration_s,
                                                double /*now_s*/) {
  samples_.push_back(throughput_of(bits, duration_s));
  if (samples_.size() > window_) {
    samples_.pop_front();
  }
}

double HarmonicMeanEstimator::estimate_bps(double /*now_s*/) const {
  if (samples_.empty()) {
    return initial_bps_;
  }
  double inv_sum = 0.0;
  for (const double s : samples_) {
    inv_sum += 1.0 / s;
  }
  return static_cast<double>(samples_.size()) / inv_sum;
}

void HarmonicMeanEstimator::reset() { samples_.clear(); }

EwmaEstimator::EwmaEstimator(double alpha, double initial_bps)
    : alpha_(alpha), initial_bps_(initial_bps) {
  if (alpha_ <= 0.0 || alpha_ > 1.0 || initial_bps_ <= 0.0) {
    throw std::invalid_argument("EwmaEstimator: bad params");
  }
}

void EwmaEstimator::on_chunk_downloaded(double bits, double duration_s,
                                        double /*now_s*/) {
  const double tput = throughput_of(bits, duration_s);
  if (!seeded_) {
    value_ = tput;
    seeded_ = true;
  } else {
    value_ = alpha_ * tput + (1.0 - alpha_) * value_;
  }
}

double EwmaEstimator::estimate_bps(double /*now_s*/) const {
  return seeded_ ? value_ : initial_bps_;
}

void EwmaEstimator::reset() {
  value_ = 0.0;
  seeded_ = false;
}

SlidingMeanEstimator::SlidingMeanEstimator(std::size_t window,
                                           double initial_bps)
    : window_(window), initial_bps_(initial_bps) {
  if (window_ == 0 || initial_bps_ <= 0.0) {
    throw std::invalid_argument("SlidingMeanEstimator: bad params");
  }
}

void SlidingMeanEstimator::on_chunk_downloaded(double bits, double duration_s,
                                               double /*now_s*/) {
  samples_.push_back(throughput_of(bits, duration_s));
  if (samples_.size() > window_) {
    samples_.pop_front();
  }
}

double SlidingMeanEstimator::estimate_bps(double /*now_s*/) const {
  if (samples_.empty()) {
    return initial_bps_;
  }
  double sum = 0.0;
  for (const double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

void SlidingMeanEstimator::reset() { samples_.clear(); }

std::unique_ptr<BandwidthEstimator> make_default_estimator() {
  return std::make_unique<HarmonicMeanEstimator>(5);
}

}  // namespace vbr::net
