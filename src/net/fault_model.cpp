#include "net/fault_model.h"

#include <stdexcept>

namespace vbr::net {

namespace {

/// splitmix64 finalizer: a strong 64-bit mixer (Vigna), the standard choice
/// for counter-based deterministic streams.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hashes (seed, stream, chunk, attempt, salt) into a uniform double in
/// [0, 1).
double keyed_u01(std::uint64_t seed, std::uint64_t stream, std::size_t chunk,
                 std::size_t attempt, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ mix64(stream));
  h = mix64(h ^ mix64(static_cast<std::uint64_t>(chunk)));
  h = mix64(h ^ mix64(static_cast<std::uint64_t>(attempt) ^ salt));
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultConfig::validate() const {
  const auto bad_prob = [](double p) { return p < 0.0 || p > 1.0; };
  if (bad_prob(connect_failure_prob) || bad_prob(mid_drop_prob) ||
      bad_prob(timeout_prob)) {
    throw std::invalid_argument(
        "FaultConfig: probabilities must lie in [0, 1]");
  }
  if (connect_failure_prob + mid_drop_prob + timeout_prob > 1.0 + 1e-12) {
    throw std::invalid_argument(
        "FaultConfig: combined fault probability exceeds 1");
  }
  if (connect_fail_delay_s <= 0.0 || timeout_s <= 0.0) {
    throw std::invalid_argument("FaultConfig: non-positive fault delay");
  }
}

FaultModel::FaultModel(const FaultConfig& config, std::uint64_t stream)
    : config_(config), stream_(stream), enabled_(config.any()) {
  config_.validate();
}

FaultOutcome FaultModel::outcome(std::size_t chunk_index,
                                 std::size_t attempt) const {
  if (!enabled_) {
    return {};
  }
  const double u = keyed_u01(config_.seed, stream_, chunk_index, attempt, 0x1);
  FaultOutcome out;
  if (u < config_.connect_failure_prob) {
    out.kind = FaultKind::kConnectFail;
  } else if (u < config_.connect_failure_prob + config_.mid_drop_prob) {
    out.kind = FaultKind::kMidDrop;
    // Keep the delivered fraction strictly inside (0, 1) so both the partial
    // transfer and the remainder stay positive byte counts.
    out.drop_fraction =
        0.05 +
        0.9 * keyed_u01(config_.seed, stream_, chunk_index, attempt, 0x2);
  } else if (u < config_.connect_failure_prob + config_.mid_drop_prob +
                     config_.timeout_prob) {
    out.kind = FaultKind::kTimeout;
  }
  return out;
}

double FaultModel::jitter_multiplier(std::size_t chunk_index,
                                     std::size_t attempt,
                                     double jitter) const {
  if (jitter <= 0.0) {
    return 1.0;
  }
  const double u = keyed_u01(config_.seed, stream_, chunk_index, attempt, 0x3);
  return 1.0 - jitter + 2.0 * jitter * u;
}

}  // namespace vbr::net
