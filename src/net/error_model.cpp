#include "net/error_model.h"

#include <algorithm>
#include <stdexcept>

namespace vbr::net {

NoisyOracleEstimator::NoisyOracleEstimator(const Trace& trace, double err,
                                           std::uint64_t seed)
    : trace_(&trace), err_(err), seed_(seed), rng_(seed) {
  if (err_ < 0.0 || err_ >= 1.0) {
    throw std::invalid_argument("NoisyOracleEstimator: err out of [0, 1)");
  }
}

void NoisyOracleEstimator::on_chunk_downloaded(double /*bits*/,
                                               double /*duration_s*/,
                                               double /*now_s*/) {
  // Oracle: observations are not needed.
}

double NoisyOracleEstimator::estimate_bps(double now_s) const {
  const double truth = trace_->bandwidth_at(std::max(now_s, 0.0));
  if (err_ == 0.0) {
    return truth;
  }
  std::uniform_real_distribution<double> u(1.0 - err_, 1.0 + err_);
  return std::max(truth * u(rng_), 1.0);
}

void NoisyOracleEstimator::reset() { rng_.seed(seed_); }

std::string NoisyOracleEstimator::name() const {
  return "noisy-oracle(err=" + std::to_string(err_) + ")";
}

}  // namespace vbr::net
