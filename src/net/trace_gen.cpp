#include "net/trace_gen.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <stdexcept>

namespace vbr::net {

namespace {

constexpr double kMbps = 1e6;

// LTE link-condition states: mean throughput per state.
struct LinkState {
  double mean_mbps;
  double jitter_sigma;  // lognormal sigma of per-second jitter
};

constexpr std::array<LinkState, 5> kLteStates = {{
    {0.15, 0.50},  // outage / deep fade
    {0.50, 0.40},  // poor
    {1.30, 0.30},  // fair
    {2.20, 0.25},  // good
    {4.80, 0.25},  // excellent
}};

// Row-stochastic transition matrix between link states; mass concentrated on
// neighbours (coverage changes gradually while driving, with rare jumps).
constexpr std::array<std::array<double, 5>, 5> kLteTransitions = {{
    {0.20, 0.60, 0.15, 0.04, 0.01},
    {0.15, 0.30, 0.40, 0.12, 0.03},
    {0.04, 0.18, 0.38, 0.32, 0.08},
    {0.01, 0.06, 0.25, 0.43, 0.25},
    {0.01, 0.03, 0.10, 0.36, 0.50},
}};

std::size_t next_state(std::size_t s, double u) {
  double acc = 0.0;
  for (std::size_t j = 0; j < kLteTransitions[s].size(); ++j) {
    acc += kLteTransitions[s][j];
    if (u < acc) {
      return j;
    }
  }
  return kLteTransitions[s].size() - 1;
}

}  // namespace

Trace generate_lte_trace(std::uint64_t seed, const LteTraceParams& params) {
  if (params.duration_s <= 0.0 || params.sample_period_s <= 0.0 ||
      params.mean_dwell_s < params.sample_period_s) {
    throw std::invalid_argument("generate_lte_trace: bad params");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  const auto n = static_cast<std::size_t>(
      std::ceil(params.duration_s / params.sample_period_s));
  // Per-trace coverage scale: which part of the country this drive crossed.
  const double trace_scale = std::exp(params.trace_scale_sigma * gauss(rng));

  std::vector<double> samples;
  samples.reserve(n);
  std::size_t state = 2 + static_cast<std::size_t>(uni(rng) * 3.0) % 3;
  std::geometric_distribution<int> dwell(
      params.sample_period_s / params.mean_dwell_s);
  std::size_t remaining_dwell = static_cast<std::size_t>(1 + dwell(rng));

  // Per-second fading is autocorrelated (AR(1) in the log domain): real
  // drive traces vary smoothly within a coverage state.
  constexpr double kFadePhi = 0.75;
  double fade = 0.0;
  while (samples.size() < n) {
    if (remaining_dwell == 0) {
      state = next_state(state, uni(rng));
      remaining_dwell = static_cast<std::size_t>(1 + dwell(rng));
    }
    const LinkState& ls = kLteStates[state];
    const double innovation_sigma =
        ls.jitter_sigma * std::sqrt(1.0 - kFadePhi * kFadePhi);
    fade = kFadePhi * fade + innovation_sigma * gauss(rng);
    const double bw =
        ls.mean_mbps * trace_scale *
        std::exp(fade - 0.5 * ls.jitter_sigma * ls.jitter_sigma);
    samples.push_back(std::max(bw, 0.01) * kMbps);
    --remaining_dwell;
  }
  return Trace("lte-" + std::to_string(seed), params.sample_period_s,
               std::move(samples));
}

Trace generate_fcc_trace(std::uint64_t seed, const FccTraceParams& params) {
  if (params.duration_s <= 0.0 || params.sample_period_s <= 0.0 ||
      params.min_base_mbps <= 0.0 ||
      params.max_base_mbps < params.min_base_mbps) {
    throw std::invalid_argument("generate_fcc_trace: bad params");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 1.0);

  const auto n = static_cast<std::size_t>(
      std::ceil(params.duration_s / params.sample_period_s));

  // Per-trace provisioned tier: clipped lognormal across households.
  const double base_mbps =
      std::clamp(3.5 * std::exp(0.65 * gauss(rng)), params.min_base_mbps,
                 params.max_base_mbps);

  std::vector<double> samples;
  samples.reserve(n);
  double level = 1.0;  // AR(1) multiplicative deviation around the base
  for (std::size_t i = 0; i < n; ++i) {
    level = 1.0 + 0.85 * (level - 1.0) + 0.05 * gauss(rng);
    level = std::clamp(level, 0.5, 1.3);
    double bw = base_mbps * level;
    if (uni(rng) < params.dip_prob) {
      // Short congestion event: cross traffic or peak-hour slowdown.
      bw *= 0.25 + 0.35 * uni(rng);
    }
    samples.push_back(std::max(bw, 0.05) * kMbps);
  }
  return Trace("fcc-" + std::to_string(seed), params.sample_period_s,
               std::move(samples));
}

std::vector<Trace> make_lte_trace_set(std::size_t count, std::uint64_t seed,
                                      const LteTraceParams& params) {
  std::vector<Trace> set;
  set.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    set.push_back(generate_lte_trace(seed * 1000003ULL + i, params));
  }
  return set;
}

std::vector<Trace> make_fcc_trace_set(std::size_t count, std::uint64_t seed,
                                      const FccTraceParams& params) {
  std::vector<Trace> set;
  set.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    set.push_back(generate_fcc_trace(seed * 1000033ULL + i, params));
  }
  return set;
}

}  // namespace vbr::net
