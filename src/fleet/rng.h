// Counter-based deterministic random draws for the fleet workload layer.
//
// Same discipline as net::FaultModel: every draw is a pure function of
// (seed, counters, salt) through the splitmix64 finalizer — no mutable RNG
// state — so workload sampling (titles, client classes, traces, watch
// durations, arrival gaps) is reproducible regardless of the order in which
// worker threads consume sessions.
#pragma once

#include <cstdint>

namespace vbr::fleet::detail {

/// splitmix64 finalizer (Vigna): the standard strong 64-bit mixer for
/// counter-based streams.
inline std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hashes (seed, a, b, salt) into a uniform double in [0, 1).
inline double keyed_u01(std::uint64_t seed, std::uint64_t a,
                        std::uint64_t b = 0, std::uint64_t salt = 0) {
  std::uint64_t h = mix64(seed ^ mix64(a));
  h = mix64(h ^ mix64(b ^ salt));
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Derives an independent child seed (per-title content seeds etc.).
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index,
                                 std::uint64_t salt) {
  return mix64(mix64(seed ^ salt) ^ index);
}

}  // namespace vbr::fleet::detail
