// Fleet-scale workload driver.
//
// Composes the catalog (Zipf popularity), the arrival processes, the
// edge-cache/origin delivery model, and the per-session simulator into one
// deterministic "day in the life of a CDN region": sessions arrive over
// time, each picks a title by popularity, a client class by mix weight, a
// network trace, and a watch duration, then streams through a per-title
// edge-cache shard.
//
// Determinism discipline (unit-tested at 1, 2, and 8 worker threads):
//   - every per-session draw (title, class, trace, watch duration) is a
//     counter-based pure function of (spec.seed, session index);
//   - the edge cache is sharded per title, and each shard's sessions run
//     serially in arrival order on whichever worker claimed the title —
//     workers claim titles in batches (FleetSpec::title_batch) to amortize
//     the atomic claim, but shard state never depends on the thread
//     schedule or the batch size;
//   - telemetry goes to private per-session sinks folded in session-id
//     order after the workers join, exactly run_experiment's discipline;
//   - aggregate report fields are folded in title order / session order,
//     never worker order.
// Consequence: run_fleet output (including serialized JSONL telemetry and
// the report JSON) is byte-identical at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "fleet/arrivals.h"
#include "fleet/catalog.h"
#include "fleet/cdn.h"
#include "fleet/edge_cache.h"
#include "metrics/report.h"
#include "net/trace.h"
#include "sim/experiment.h"

namespace vbr::fleet {

/// One heterogeneous client population (a scheme + resilience + metadata
/// profile) with a mix weight. Arriving sessions draw their class with
/// probability proportional to `weight`.
struct FleetClientClass {
  std::string label;              ///< Report key (e.g. "cava", "bola-lte").
  /// Required. Workers build one scheme per class and reuse it across the
  /// sessions they run (run_session resets scheme state up front), so the
  /// factory is called O(threads), not O(sessions).
  sim::SchemeFactory make_scheme;
  sim::EstimatorFactory make_estimator;  ///< Empty = default harmonic mean.
  sim::SizeProviderFactory make_size_provider;  ///< Empty = exact sizes.
  net::FaultConfig fault;   ///< Per-class fault profile (default: none).
  sim::RetryPolicy retry;   ///< Consulted when `fault` is enabled.
  double weight = 1.0;      ///< Relative arrival share (> 0).
};

/// Watch-duration / early-abandon distribution: with probability
/// `full_watch_prob` a viewer watches to the end; otherwise they leave
/// after min_watch_s plus an Exp(mean_partial_s) tail.
struct WatchConfig {
  double full_watch_prob = 0.6;
  double mean_partial_s = 45.0;  ///< Mean of the partial-watch tail.
  double min_watch_s = 5.0;      ///< Everyone watches at least this much.

  /// Throws std::invalid_argument on a probability outside [0, 1] or
  /// non-positive tail mean / negative minimum.
  void validate() const;
};

/// Cooperative in-process kill: the chaos harness's way of aborting a
/// fleet mid-run at a session boundary. When `after_sessions` completed
/// sessions have been counted, every worker parks at its next session
/// boundary, a final checkpoint is written (when checkpointing is on), and
/// run_fleet throws FleetKilled. 0 = never fires.
struct KillSchedule {
  std::uint64_t after_sessions = 0;

  /// A seeded random kill point in [1, num_sessions] — `round` varies the
  /// draw so a soak loop kills somewhere new each iteration.
  [[nodiscard]] static KillSchedule random(std::uint64_t seed,
                                           std::uint64_t round,
                                           std::uint64_t num_sessions);
};

/// In-situ A/B experiment block ("Learning in situ", PAPERS.md): arriving
/// sessions are assigned to one of N arms by seeded, counter-based
/// randomization, stratified by trace class (bandwidth-rank bucket of the
/// drawn trace) and title-popularity decile. Within each stratum the arms
/// are balanced by permuted blocks: session counts per arm differ by at
/// most one, and the assignment is a pure function of
/// (experiment.seed, stratum, per-stratum arrival counter) — byte-identical
/// at any thread count and invariant to title_batch.
///
/// When enabled (non-empty `arms`), the arms ARE the client classes:
/// FleetSpec::classes must be left empty, class_index doubles as the arm
/// index, and all per-class machinery (scheme reuse, per-class report,
/// folds) applies per arm. Arms override the client-side profile (scheme /
/// estimator / size provider / fault / retry); the delivery path (cache,
/// CDN) is shared infrastructure and stays common to all arms — that is
/// what makes the experiment "in situ". Arm `weight` is ignored: assignment
/// is balanced, not weighted.
struct FleetExperimentConfig {
  std::vector<FleetClientClass> arms;  ///< Empty = no experiment.
  /// Assignment randomization seed, independent of FleetSpec::seed so the
  /// workload (titles, traces, watch times) is identical across
  /// re-randomizations.
  std::uint64_t seed = 1001;
  /// Number of bandwidth-rank buckets over spec.traces (stratum count =
  /// trace_strata * 10 popularity deciles). Must be in [1, 64].
  std::size_t trace_strata = 4;
  /// Score every session under the pluggable QoE-model suite
  /// (metrics::QoeModelSuite::standard) into FleetSessionRecord::qoe_scores.
  bool score_qoe_models = true;

  [[nodiscard]] bool enabled() const { return !arms.empty(); }
};

/// Which execution engine run_fleet dispatches to. Both engines produce
/// byte-identical FleetResult JSON and merged telemetry for the same spec
/// (the differential suite pins it); they differ in how sessions are
/// scheduled and what scale they reach.
enum class FleetEngine {
  /// Per-session stepper: workers claim titles in batches and run each
  /// session to completion. The original engine; the default.
  kStepped,
  /// Shared-virtual-time event engine (fleet/engine.h): every session's
  /// next chunk decision is an event on one global timeline keyed by
  /// (virtual_time, session_id), so uncoupled sessions genuinely
  /// interleave — 100k+ concurrently in flight — while titles with shared
  /// delivery state (use_cache) are chained in arrival order to preserve
  /// the stepper's per-title state sequence byte for byte.
  kEvent,
};

/// Execution counters of the event engine (all zero under kStepped).
/// Deliberately NOT serialized by FleetResult::write_json: the report's
/// bytes must not depend on which engine produced it.
struct FleetEngineStats {
  std::uint64_t events_processed = 0;  ///< Chunk-decision events handled.
  std::uint64_t peak_in_flight = 0;    ///< Concurrent open sessions (HWM).
  std::uint64_t max_heap_size = 0;     ///< Event-queue high-water mark.
  /// Streaming-aggregation reorder buffer high-water mark: completed
  /// records waiting for a lower session id — the evidence that streaming
  /// never materializes all per-session records.
  std::uint64_t peak_resident_records = 0;
};

/// Declarative description of a whole fleet run.
struct FleetSpec {
  CatalogConfig catalog;
  ArrivalConfig arrivals;
  /// Non-empty with weights > 0 — unless `experiment` is enabled, in which
  /// case this must be empty (the arms take over the class slots).
  std::vector<FleetClientClass> classes;
  /// In-situ A/B experiment (optional). See FleetExperimentConfig.
  FleetExperimentConfig experiment;
  /// Per-session network traces; each session draws one uniformly.
  std::span<const net::Trace> traces;

  /// Edge-cache model. `cache.capacity_bits` is the TOTAL capacity, split
  /// evenly across per-title shards. `use_cache = false` detaches the
  /// delivery model entirely (direct origin delivery, no latency, no
  /// haircut) — the control arm for cache experiments.
  EdgeCacheConfig cache;
  bool use_cache = true;

  /// Multi-tier CDN hierarchy (fleet/cdn.h): edge -> regional -> origin
  /// with coalescing, fault domains, brownouts, and load shedding.
  /// `cdn.enabled` requires `use_cache` (the hierarchy extends the edge
  /// tier); disabled leaves the flat model byte-for-byte untouched.
  CdnConfig cdn;

  WatchConfig watch;

  /// Shared per-session base config. Telemetry sinks, size providers, and
  /// download hooks must be null here — run_fleet owns all three (throws
  /// otherwise).
  sim::SessionConfig session;
  video::QualityMetric metric = video::QualityMetric::kVmafPhone;
  metrics::QoeConfig qoe;

  /// Worker threads; 0 = hardware concurrency. Bounded by sim::kMaxThreads.
  unsigned threads = 0;
  /// Titles claimed per atomic fetch_add when workers pull work. Batching
  /// amortizes the claim (and the per-worker warm-up of reusable schemes /
  /// providers) across several titles; it cannot affect results, because
  /// every fold is in title/session order regardless of who ran what.
  /// Must be >= 1 (validated).
  std::size_t title_batch = 4;
  /// Master workload seed: drives the per-session draws (title, class,
  /// trace, watch duration). Independent of catalog.seed (content) and
  /// arrivals.seed (timing).
  std::uint64_t seed = 7;

  /// Execution engine (see FleetEngine). Pure execution knob: it is
  /// excluded from the checkpoint spec fingerprint, and every output byte
  /// is identical across engines for the same spec.
  FleetEngine engine = FleetEngine::kStepped;
  /// Event engine only: fold each completed session straight into the
  /// aggregate report through a session-id-ordered reorder drain
  /// (obs/fold.h) and discard its record, so FleetResult::sessions stays
  /// empty and resident memory is O(sessions in flight), not O(sessions).
  /// Aggregates (report JSON, merged telemetry, metrics) are byte-identical
  /// to the materializing path. Incompatible with checkpoint / kill /
  /// resume, which persist the very records streaming discards (validated).
  bool stream_aggregation = false;

  /// Merged telemetry destinations (optional, not owned); same fold
  /// discipline as ExperimentSpec.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  // --- Crash safety (see fleet/checkpoint.h) ---------------------------
  /// Checkpoint file; empty = checkpointing off. Written atomically
  /// (temp + rename) at the periodic barrier and when a kill fires.
  std::string checkpoint_path;
  /// Periodic-checkpoint cadence: completed sessions between snapshots
  /// under the per-session stepper, processed EVENTS (chunk decisions)
  /// under the event engine, whose barriers land between fixed-size event
  /// batches. 0 = no periodic checkpoints (a kill still writes a final one
  /// when a path is set).
  std::uint64_t checkpoint_every = 64;
  /// Resume from `checkpoint_path` when that file exists (absent file =
  /// fresh run, so one flag serves every iteration of a kill/resume loop).
  /// The checkpoint's spec fingerprint must match this spec; a stale or
  /// corrupt file is rejected with a CheckpointError.
  bool resume = false;
  /// Cooperative chaos kill (0 = off).
  KillSchedule kill;
  /// Wall-clock sleep per completed session, microseconds. Purely a chaos
  /// aid: it stretches a run so an external SIGKILL can land mid-flight,
  /// and cannot affect any output byte (nothing reads the wall clock).
  std::uint64_t throttle_us = 0;

  /// Validates the whole spec with field-named errors ("FleetSpec.<field>:
  /// ..."): empty class list, zero/negative mix weights, missing scheme
  /// factories, zero title_batch, empty trace set, thread cap, misplaced
  /// session sinks, and every nested config's own validate(). run_fleet
  /// calls this first; call it directly to fail fast before a long setup.
  void validate() const;
};

/// Outcome of one fleet session, in arrival order.
struct FleetSessionRecord {
  std::uint64_t session_id = 0;  ///< Arrival index; telemetry session_id.
  double arrival_s = 0.0;
  std::size_t title = 0;
  /// Client-class index — in an experiment run, the arm index.
  std::size_t class_index = 0;
  std::size_t trace_index = 0;
  /// Experiment stratum: trace_bucket * 10 + popularity decile. 0 outside
  /// experiment runs.
  std::uint32_t stratum = 0;
  double watch_duration_s = 0.0;  ///< 0 = watched to the end.
  metrics::QoeSummary qoe;
  metrics::FaultSummary faults;
  std::size_t chunks = 0;      ///< Chunks resolved (delivered or skipped).
  std::size_t edge_hits = 0;   ///< Delivered chunks served from the edge.
  double edge_hit_bits = 0.0;  ///< Bytes of delivered chunks served at edge.
  double origin_bits = 0.0;    ///< Bytes of delivered chunks from origin.
  // CDN-tier outcomes (all zero when FleetSpec::cdn is disabled).
  std::size_t regional_hits = 0;     ///< Chunks served by the regional tier.
  std::size_t coalesced_chunks = 0;  ///< Chunks joined to an in-flight fetch.
  std::size_t shed_chunks = 0;       ///< Chunks penalized by load shedding.
  double regional_bits = 0.0;        ///< Bytes served by the regional tier.
  bool watchdog_aborted = false;  ///< Session hit a watchdog budget.
  /// Per-QoE-model session scores, ordered like FleetResult::
  /// qoe_model_names. Filled only on experiment runs with
  /// score_qoe_models on; empty otherwise.
  std::vector<double> qoe_scores;
};

/// Per-class QoE aggregate (the "QoE distribution per scheme" view).
struct FleetSchemeReport {
  std::string label;
  std::size_t sessions = 0;
  double mean_all_quality = 0.0;
  double mean_q4_quality = 0.0;
  double mean_low_quality_pct = 0.0;
  double mean_rebuffer_s = 0.0;
  double mean_startup_delay_s = 0.0;
  double mean_data_usage_mb = 0.0;
  /// Mean per-model QoE score, ordered like FleetResult::qoe_model_names
  /// (experiment runs only; empty otherwise).
  std::vector<double> mean_qoe_scores;
};

/// Complete fleet outcome + report.
struct FleetResult {
  /// Sessions executed. Always set by run_fleet; under streaming
  /// aggregation it is the only record of the count (`sessions` stays
  /// empty). write_json prefers it over sessions.size() when non-zero.
  std::uint64_t total_sessions = 0;
  std::vector<FleetSessionRecord> sessions;  ///< Arrival order.
  /// Ordered like spec.classes — or like spec.experiment.arms when the
  /// experiment is enabled (one row per arm).
  std::vector<FleetSchemeReport> per_class;

  /// Experiment echo: enabled flag and the QoE-model suite ordering behind
  /// FleetSessionRecord::qoe_scores. The report JSON gains an "experiment"
  /// block only when enabled, so pre-A/B reports keep their bytes.
  bool experiment_enabled = false;
  std::vector<std::string> qoe_model_names;

  bool cache_enabled = false;
  EdgeCacheStats cache;  ///< Summed over per-title shards, title order.
  double edge_hit_bits = 0.0;  ///< Delivered bytes served from the edge.
  double origin_bits = 0.0;    ///< Delivered bytes egressed from the origin.

  /// CDN hierarchy aggregates (fleet/cdn.h), folded in title order.
  bool cdn_enabled = false;
  CdnStats cdn;
  EdgeCacheStats regional;  ///< Regional-tier cache stats, title order.
  /// Upstream fetches per client request — the retry-amplification number
  /// (satellite of the report): with the flat cache model this is the miss
  /// ratio; with the CDN it is (regional hits + origin fetches) / requests;
  /// 1.0 with the cache model off.
  double upstream_fetch_ratio = 0.0;
  /// Delivered-chunk hit ratio per track index (0 when a track saw no
  /// fetches). Sized to the widest title.
  std::vector<double> hit_ratio_by_track;
  /// Delivered-chunk hit ratio per popularity decile (10 entries; 0 =
  /// hottest tenth of the catalog).
  std::vector<double> hit_ratio_by_popularity_decile;

  // Cross-session fairness over per-session outcomes (stats::jain_index).
  double jain_quality = 0.0;  ///< Over per-session mean delivered quality.
  double jain_bits = 0.0;     ///< Over per-session data usage.

  /// Sessions aborted by the per-session watchdog (counted, not hidden:
  /// a pathological session is a result, not a hang).
  std::uint64_t watchdog_aborted_sessions = 0;

  /// Event-engine execution counters (zeros under kStepped). Not written
  /// by write_json — report bytes are engine-invariant.
  FleetEngineStats engine_stats;

  /// Serializes the fleet report (cache + fairness + per-class QoE) as one
  /// JSON object, byte-deterministic (obs json_util writers).
  void write_json(std::ostream& out) const;
};

/// Runs the whole fleet. Throws std::invalid_argument on a malformed spec
/// or an arrival config that yields zero sessions; CheckpointError on a
/// stale/corrupt resume checkpoint; std::system_error on checkpoint I/O
/// failure; FleetKilled when the kill schedule fires (both defined in
/// fleet/checkpoint.h).
[[nodiscard]] FleetResult run_fleet(const FleetSpec& spec);

}  // namespace vbr::fleet
