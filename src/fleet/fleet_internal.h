// Internals shared by run_fleet's two execution engines.
//
// run_fleet (fleet.cpp) owns all setup (draws, telemetry slots, resume
// restore) and all finalization (title-order merges, session-order folds,
// report assembly); the engines only differ in HOW the sessions between
// those two points get executed:
//   - the per-session stepper (fleet.cpp): workers claim titles and run
//     each session to completion;
//   - the shared-virtual-time event engine (engine.cpp): one global
//     timeline of chunk-decision events.
// Everything both need — the per-session draw, the record builder, the
// session-order fold accumulators, and the context handed to the event
// engine — lives here so neither engine can drift from the other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/catalog.h"
#include "fleet/cdn.h"
#include "fleet/checkpoint.h"
#include "fleet/edge_cache.h"
#include "fleet/fleet.h"
#include "metrics/qoe_model.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/experiment.h"
#include "sim/session.h"

namespace vbr::fleet::detail {

/// Everything an arriving session is, decided up front as pure functions of
/// (spec.seed, session index) so workers never race on a draw.
struct SessionDraw {
  std::size_t title = 0;
  std::size_t cls = 0;   ///< Class index — the arm index in an experiment.
  std::size_t trace = 0;
  std::uint32_t stratum = 0;  ///< Experiment stratum; 0 otherwise.
  double watch_s = 0.0;  ///< 0 = watches to the end.
};

/// Builds one FleetSessionRecord from a finished session: delivery-tier
/// bookkeeping (which also accumulates into the title's track_hits /
/// track_total rows), QoE, and experiment scores. Shared verbatim by both
/// engines — the accumulation order into the title rows is the chunk
/// order, identical either way.
[[nodiscard]] FleetSessionRecord build_session_record(
    const FleetSpec& spec, const SessionDraw& d, std::size_t sid,
    double arrival_s, std::size_t title, const sim::SessionResult& sr,
    const std::vector<std::size_t>& classes, const metrics::QoeConfig& qoe,
    const metrics::QoeModelSuite& qoe_suite, bool experiment_on,
    std::vector<std::uint64_t>& title_track_hits,
    std::vector<std::uint64_t>& title_track_total);

/// Streaming accumulator for the session-id-order fold that produces the
/// fleet-wide and per-class aggregates. Feeding records through add() in
/// ascending session-id order is bitwise identical to the historical
/// vector-then-fold pass: every accumulator (including the Jain sum /
/// sum-of-squares pairs, which replicate stats::jain_index's single
/// forward pass) sees the same additions in the same order.
struct SessionFold {
  std::uint64_t count = 0;
  double quality_sum = 0.0;
  double quality_sum_sq = 0.0;
  double bits_sum = 0.0;
  double bits_sum_sq = 0.0;

  /// Folds one record into `result` (edge/origin bits, watchdog count,
  /// per-class partial sums) and the Jain accumulators. result.per_class
  /// must already be sized and labeled.
  void add(FleetResult& result, const FleetSessionRecord& rec);

  /// stats::jain_index over a sequence summarized as (n, sum, sum_sq) —
  /// the exact same arithmetic, so streaming equals materializing.
  [[nodiscard]] static double jain(std::uint64_t n, double sum,
                                   double sum_sq);
};

/// Streaming telemetry fold: per-session sinks re-sequenced onto one
/// monotone global stream, registries merged, in session-id order.
/// Interleaving one session's events with its metrics merge (the streaming
/// drain's order) is byte-identical to the historical all-events-then-all-
/// metrics passes: each destination sees its own additions in the same
/// order either way.
struct TelemetryFold {
  obs::TraceSink* trace = nullptr;         ///< Optional destination.
  obs::MetricsRegistry* metrics = nullptr; ///< Optional destination.
  std::uint64_t global_seq = 0;

  /// Folds one session's telemetry (either pointer may be null).
  void add(const obs::MemoryTraceSink* sink,
           const obs::MetricsRegistry* registry);
  /// Flushes the trace destination (call once, after the last add).
  void finish();
};

/// Serializes the completed sessions listed in `done_sids` (ascending)
/// into `ck.sessions` — records plus whichever private telemetry streams
/// the spec collects. Shared by both engines' snapshot paths.
void collect_checkpoint_sessions(
    const FleetSpec& spec, const FleetResult& result,
    const std::vector<std::unique_ptr<obs::MemoryTraceSink>>& sinks,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& registries,
    const std::vector<std::size_t>& done_sids, FleetCheckpoint& ck);

/// Borrowed views of run_fleet's setup, handed to the event engine. Every
/// reference points at a local of the calling run_fleet invocation and is
/// valid for the duration of run_fleet_event only.
struct EngineContext {
  const FleetSpec& spec;
  const Catalog& catalog;
  const std::vector<double>& arrivals;
  const std::vector<FleetClientClass>& fleet_classes;
  const std::vector<SessionDraw>& draws;
  const std::vector<std::vector<std::size_t>>& by_title;
  const metrics::QoeModelSuite& qoe_suite;
  const EdgeCacheConfig& shard_cfg;
  const CdnModel* cdn_model;  ///< Null unless the CDN hierarchy is on.
  const sim::EstimatorFactory& default_estimator;

  bool experiment_on = false;
  bool telemetry_on = false;
  bool cdn_on = false;
  bool crash_safety_on = false;
  std::size_t max_tracks = 0;
  unsigned threads = 1;
  std::uint64_t fp = 0;      ///< Spec fingerprint (0 unless crash safety).
  std::uint64_t exp_fp = 0;  ///< Experiment fingerprint.
  std::uint64_t initial_done = 0;    ///< Sessions restored from a resume.
  std::uint64_t initial_events = 0;  ///< events_done restored from a resume.
  /// Resume only: per-session completed bitmap (size n); null on a fresh
  /// run.
  const std::vector<std::uint8_t>* resumed_completed = nullptr;

  // Mutable per-title / per-session state owned by run_fleet.
  std::vector<std::size_t>& done_in_title;
  std::vector<std::unique_ptr<EdgeCache>>& shards;
  std::vector<EdgeCacheStats>& shard_stats;
  std::vector<TitleCdnState>& cdn_states;
  std::vector<std::vector<std::uint64_t>>& track_hits;
  std::vector<std::vector<std::uint64_t>>& track_total;
  std::vector<std::unique_ptr<obs::MemoryTraceSink>>& sinks;
  std::vector<std::unique_ptr<obs::MetricsRegistry>>& registries;
  FleetResult& result;
  SessionFold& fold;            ///< Fed by the engine when streaming.
  TelemetryFold& telemetry_fold;
};

}  // namespace vbr::fleet::detail
