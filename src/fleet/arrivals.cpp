#include "fleet/arrivals.h"

#include <cmath>
#include <stdexcept>

#include "fleet/rng.h"

namespace vbr::fleet {

void ArrivalConfig::validate() const {
  if (!(rate_per_s > 0.0) || !std::isfinite(rate_per_s)) {
    throw std::invalid_argument("ArrivalConfig: rate_per_s must be > 0");
  }
  if (!(horizon_s > 0.0) || !std::isfinite(horizon_s)) {
    throw std::invalid_argument("ArrivalConfig: horizon_s must be > 0");
  }
  if (kind == ArrivalKind::kFlashCrowd) {
    if (burst_start_s < 0.0 || burst_duration_s <= 0.0 ||
        burst_start_s + burst_duration_s > horizon_s) {
      throw std::invalid_argument(
          "ArrivalConfig: burst window must lie inside [0, horizon)");
    }
    if (burst_multiplier < 1.0) {
      throw std::invalid_argument(
          "ArrivalConfig: burst_multiplier below 1");
    }
  }
}

std::vector<double> generate_arrivals(const ArrivalConfig& cfg) {
  cfg.validate();
  std::vector<double> times;
  // Thinning at the peak rate: exact for kPoisson (accept-all) and for the
  // piecewise-constant flash-crowd intensity alike.
  const bool burst = cfg.kind == ArrivalKind::kFlashCrowd;
  const double peak_rate =
      burst ? cfg.rate_per_s * cfg.burst_multiplier : cfg.rate_per_s;
  double t = 0.0;
  for (std::uint64_t i = 0;; ++i) {
    const double u = detail::keyed_u01(cfg.seed, i, 0, 0xa221);
    // 1 - u in (0, 1]: log() stays finite.
    t += -std::log(1.0 - u) / peak_rate;
    if (t >= cfg.horizon_s) {
      break;
    }
    double rate = cfg.rate_per_s;
    if (burst && t >= cfg.burst_start_s &&
        t < cfg.burst_start_s + cfg.burst_duration_s) {
      rate *= cfg.burst_multiplier;
    }
    const double accept = detail::keyed_u01(cfg.seed, i, 1, 0xa222);
    if (accept < rate / peak_rate) {
      times.push_back(t);
      if (cfg.max_sessions > 0 && times.size() >= cfg.max_sessions) {
        break;
      }
    }
  }
  return times;
}

}  // namespace vbr::fleet
