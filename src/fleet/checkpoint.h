// Crash-safe fleet checkpoints: periodic snapshots of run_fleet progress
// that resume to byte-identical output.
//
// Why this is possible at all: every workload draw in the fleet layer is a
// counter-based pure function of (seed, session index) — there is no
// mutable RNG state to capture — and every fold is in title/session order.
// The whole resumable state is therefore: which sessions completed (a done
// count per title, since each title's sessions run serially in arrival
// order), their FleetSessionRecords, their private telemetry, the per-title
// track aggregates, and the live edge-cache shard contents of in-progress
// titles. A checkpoint captures exactly that; resuming replays only the
// remaining sessions against restored shards, so the final FleetResult,
// report JSON, and merged telemetry are byte-for-byte what an uninterrupted
// run produces, at any thread count.
//
// The checkpoint *file* is NOT deterministic (which sessions have finished
// when the snapshot fires depends on the thread schedule); only resume-to-
// final-output is, and that is the property the tests pin.
//
// Snapshot safety: checkpoints are taken at a cooperative barrier — every
// worker parks at a session boundary, the last arriver serializes — so a
// snapshot never sees a half-run session. Durability: the file is written
// to `<path>.tmp`, fsynced, atomically renamed over `<path>`, and the
// directory is fsynced; a crash mid-write leaves the previous checkpoint
// intact. Format: versioned text ("VBRFLEETCKPT 3"), shortest-round-trip
// doubles (exact), telemetry as checksummed JSONL lines, and a whole-file
// FNV-1a trailer. load() rejects bad magic, unknown versions, trailer
// mismatches, and a spec fingerprint that does not match the running spec
// (a stale checkpoint from a different workload) — each with a named
// CheckpointError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/cdn.h"
#include "fleet/edge_cache.h"
#include "fleet/fleet.h"
#include "obs/event.h"
#include "obs/metrics.h"

namespace vbr::fleet {

/// A checkpoint that cannot be used: bad magic, unsupported version,
/// truncation, trailer mismatch, or a spec fingerprint that does not match
/// the running FleetSpec. The message names what was wrong.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by run_fleet when a KillSchedule fires: the fleet stopped
/// cooperatively at a session boundary after writing a final checkpoint
/// (when FleetSpec::checkpoint_path is set). Carries how far the run got.
class FleetKilled : public std::runtime_error {
 public:
  FleetKilled(std::uint64_t sessions_completed, std::string checkpoint_path)
      : std::runtime_error(
            "run_fleet: killed by schedule after " +
            std::to_string(sessions_completed) + " sessions" +
            (checkpoint_path.empty() ? std::string(" (no checkpoint)")
                                     : " (checkpoint: " + checkpoint_path +
                                           ")")),
        sessions_completed_(sessions_completed),
        checkpoint_path_(std::move(checkpoint_path)) {}

  [[nodiscard]] std::uint64_t sessions_completed() const {
    return sessions_completed_;
  }
  [[nodiscard]] const std::string& checkpoint_path() const {
    return checkpoint_path_;
  }

 private:
  std::uint64_t sessions_completed_;
  std::string checkpoint_path_;
};

/// Hash of everything that defines the workload a checkpoint belongs to:
/// seeds, catalog, arrivals, classes (label/weight/fault/retry and which
/// factories are attached), watch model, cache config, session config,
/// QoE config, full trace contents, and whether telemetry is collected.
/// Deliberately EXCLUDES execution knobs that cannot change any output
/// byte: threads, title_batch, checkpoint/resume/kill/throttle settings.
/// Class factories themselves cannot be hashed — the label stands in for
/// the scheme identity, so resuming with a different scheme under the same
/// label is undetectable (documented sharp edge).
[[nodiscard]] std::uint64_t fleet_spec_fingerprint(const FleetSpec& spec);

/// Hash of the experiment block alone (enabled flag, assignment seed,
/// stratum count, QoE-model scoring, and every arm's label/weight/fault/
/// retry/factory shape). Folded into fleet_spec_fingerprint AND stored
/// separately in the checkpoint, so resuming under a different arm table
/// fails with an error naming FleetSpec.experiment instead of a generic
/// fingerprint mismatch. 0 is never returned (a disabled block hashes to a
/// fixed non-zero value).
[[nodiscard]] std::uint64_t fleet_experiment_fingerprint(const FleetSpec& spec);

/// Versioned snapshot of run_fleet progress. See the header comment for
/// the determinism argument and the on-disk format.
struct FleetCheckpoint {
  /// Format written by the per-session stepper ("VBRFLEETCKPT 3").
  static constexpr std::uint32_t kVersion = 3;
  /// Format written by the event engine ("VBRFLEETCKPT 4"): identical to
  /// version 3 plus one "engine <events_done>" line after the meta line.
  /// Engines cannot resume each other's files — a v3 snapshot locates the
  /// resume point as a per-title done-prefix, while a v4 snapshot from an
  /// uncoupled event run records an arbitrary completed-session set —
  /// run_fleet rejects the cross-mode combinations with a CheckpointError
  /// naming FleetSpec.engine. The spec fingerprint is engine-invariant
  /// (the engine is an execution knob), so the version carries the mode.
  static constexpr std::uint32_t kEventVersion = 4;

  /// Which format this snapshot uses (and save() writes).
  std::uint32_t version = kVersion;
  /// Event engine only (version >= 4): events processed when the snapshot
  /// was taken. Resume re-anchors the event-count checkpoint barrier here
  /// so periodic snapshots stay on the same cadence.
  std::uint64_t events_done = 0;

  std::uint64_t spec_fingerprint = 0;
  /// fleet_experiment_fingerprint(spec) at capture time; checked first on
  /// resume so a changed arm table gets a field-named error.
  std::uint64_t experiment_fingerprint = 0;
  std::uint64_t num_sessions = 0;  ///< Total sessions of the run.
  std::uint64_t num_titles = 0;
  std::uint64_t max_tracks = 0;
  std::uint64_t sessions_done = 0;

  /// Progress of one title that has at least one completed session. A
  /// title's sessions run serially in arrival order, so `done` fully
  /// locates the resume point within it.
  struct TitleState {
    std::uint64_t index = 0;
    std::uint64_t done = 0;   ///< Completed sessions of this title.
    std::uint64_t total = 0;  ///< All sessions of this title.
    EdgeCacheStats stats;     ///< Shard stats at capture time.
    /// In-progress titles with the cache model on carry their live shard
    /// contents (MRU-first); completed titles only need `stats`.
    bool has_shard = false;
    std::vector<EdgeCacheEntrySnapshot> shard_entries;
    std::vector<std::uint64_t> track_hits;   ///< Sized to max_tracks.
    std::vector<std::uint64_t> track_total;  ///< Sized to max_tracks.

    // CDN hierarchy state (fleet/cdn.h). All-zero / empty when the spec's
    // CDN is disabled; serialized unconditionally so the format is uniform.
    std::uint64_t cdn_requests = 0;           ///< Shed-draw counter.
    std::uint64_t cdn_consecutive_sheds = 0;  ///< Backoff ladder position.
    CdnStats cdn_stats;
    EdgeCacheStats regional_stats;
    /// In-progress titles with the CDN on carry their live regional slice
    /// (MRU-first) and open coalescing fetch windows (key order).
    bool has_regional = false;
    std::vector<EdgeCacheEntrySnapshot> regional_entries;
    std::vector<std::pair<std::uint64_t, CdnInflight>> inflight;
  };
  std::vector<TitleState> titles;

  /// One completed session: its record plus its private telemetry (events
  /// and metrics registry), exactly as the post-join fold will consume
  /// them. Present only for the telemetry streams the spec collects.
  struct SessionState {
    FleetSessionRecord record;
    bool has_events = false;
    std::vector<obs::DecisionEvent> events;
    bool has_metrics = false;
    obs::MetricsRegistry metrics;
  };
  std::vector<SessionState> sessions;  ///< Session-id order.

  /// Atomically writes the checkpoint: temp file + fsync + rename +
  /// directory fsync. Throws std::system_error (carrying errno) on any
  /// I/O failure — a checkpoint that silently failed to persist is worse
  /// than none.
  void save(const std::string& path) const;

  /// Loads and fully validates a checkpoint file. Throws CheckpointError
  /// naming the problem (magic, version, truncation, trailer checksum,
  /// malformed field); throws std::system_error when the file cannot be
  /// opened or read.
  [[nodiscard]] static FleetCheckpoint load(const std::string& path);
};

}  // namespace vbr::fleet
