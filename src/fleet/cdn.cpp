#include "fleet/cdn.h"

#include <algorithm>
#include <stdexcept>

#include "fleet/rng.h"

namespace vbr::fleet {

namespace {

// Draw salts for the CDN's independent decision streams.
constexpr std::uint64_t kSaltOutage = 0xcd7001;
constexpr std::uint64_t kSaltShed = 0xcd7002;

}  // namespace

void CdnBrownoutConfig::validate() const {
  if (start_s < 0.0 || duration_s < 0.0) {
    throw std::invalid_argument(
        "CdnConfig.brownout.start_s/duration_s: must be non-negative");
  }
  if (!(rate_scale > 0.0) || rate_scale > 1.0) {
    throw std::invalid_argument(
        "CdnConfig.brownout.rate_scale: must be in (0, 1]");
  }
  if (extra_latency_s < 0.0) {
    throw std::invalid_argument(
        "CdnConfig.brownout.extra_latency_s: must be non-negative");
  }
  if (!(capacity_scale > 0.0) || capacity_scale > 1.0) {
    throw std::invalid_argument(
        "CdnConfig.brownout.capacity_scale: must be in (0, 1]");
  }
}

void CdnRegionalConfig::validate() const {
  if (nodes == 0) {
    throw std::invalid_argument(
        "CdnConfig.regional.nodes: at least one regional node is required");
  }
  if (!(capacity_bits > 0.0)) {
    throw std::invalid_argument(
        "CdnConfig.regional.capacity_bits: must be positive");
  }
  if (hit_latency_s < 0.0) {
    throw std::invalid_argument(
        "CdnConfig.regional.hit_latency_s: must be non-negative");
  }
  if (!(rate_scale > 0.0) || rate_scale > 1.0) {
    throw std::invalid_argument(
        "CdnConfig.regional.rate_scale: must be in (0, 1]");
  }
  if (outages_per_node > 0 && !(outage_duration_s > 0.0)) {
    throw std::invalid_argument(
        "CdnConfig.regional.outage_duration_s: must be positive when "
        "outages are scheduled");
  }
  if (outage_duration_s < 0.0 || failover_latency_s < 0.0) {
    throw std::invalid_argument(
        "CdnConfig.regional.outage_duration_s/failover_latency_s: must be "
        "non-negative");
  }
}

void CdnShedConfig::validate() const {
  if (capacity_sessions < 0.0) {
    throw std::invalid_argument(
        "CdnConfig.shed.capacity_sessions: must be non-negative (0 = "
        "shedding off)");
  }
  if (!(active_session_s > 0.0)) {
    throw std::invalid_argument(
        "CdnConfig.shed.active_session_s: must be positive");
  }
  if (!(threshold > 0.0)) {
    throw std::invalid_argument(
        "CdnConfig.shed.threshold: must be positive (shedding below zero "
        "utilization is meaningless)");
  }
  if (max_shed_prob < 0.0 || max_shed_prob > 1.0) {
    throw std::invalid_argument(
        "CdnConfig.shed.max_shed_prob: must be in [0, 1]");
  }
  if (!(penalty_rate_scale > 0.0) || penalty_rate_scale > 1.0) {
    throw std::invalid_argument(
        "CdnConfig.shed.penalty_rate_scale: must be in (0, 1]");
  }
}

void CdnConfig::validate() const {
  if (!(backhaul_bps > 0.0)) {
    throw std::invalid_argument("CdnConfig.backhaul_bps: must be positive");
  }
  regional.validate();
  brownout.validate();
  shed.validate();
  retry.validate();
}

void CdnStats::merge(const CdnStats& other) {
  client_requests += other.client_requests;
  edge_hits += other.edge_hits;
  regional_hits += other.regional_hits;
  origin_fetches += other.origin_fetches;
  coalesced += other.coalesced;
  shed += other.shed;
  failovers += other.failovers;
  brownout_fetches += other.brownout_fetches;
  shed_wait_s += other.shed_wait_s;
  regional_hit_bits += other.regional_hit_bits;
  origin_fetch_bits += other.origin_fetch_bits;
}

CdnModel::CdnModel(const CdnConfig& cfg, const EdgeCacheConfig& edge_cfg,
                   std::size_t num_titles, std::vector<double> arrivals)
    : cfg_(cfg), edge_cfg_(edge_cfg), arrivals_(std::move(arrivals)) {
  cfg_.validate();
  edge_cfg_.validate();
  if (num_titles == 0) {
    throw std::invalid_argument("CdnModel: num_titles must be positive");
  }
  if (!std::is_sorted(arrivals_.begin(), arrivals_.end())) {
    throw std::invalid_argument(
        "CdnModel: arrival times must be ascending");
  }
  regional_shard_cfg_ = edge_cfg_;
  regional_shard_cfg_.capacity_bits =
      cfg_.regional.capacity_bits / static_cast<double>(num_titles);
  regional_shard_cfg_.hit_latency_s = cfg_.regional.hit_latency_s;
  regional_shard_cfg_.origin_rate_scale = cfg_.regional.rate_scale;

  // Seeded outage schedule: window starts are uniform over the arrival
  // horizon — a pure function of (seed, node, outage index), so the fault
  // timeline is identical on every run, thread count, and resume.
  const double horizon = arrivals_.empty() ? 0.0 : arrivals_.back();
  outages_.resize(cfg_.regional.nodes);
  for (std::size_t m = 0; m < cfg_.regional.nodes; ++m) {
    outages_[m].reserve(cfg_.regional.outages_per_node);
    for (std::size_t j = 0; j < cfg_.regional.outages_per_node; ++j) {
      const double start =
          detail::keyed_u01(cfg_.seed, m, j, kSaltOutage) * horizon;
      outages_[m].emplace_back(start, start + cfg_.regional.outage_duration_s);
    }
    std::sort(outages_[m].begin(), outages_[m].end());
  }
}

bool CdnModel::brownout_at(double t) const {
  return cfg_.brownout.duration_s > 0.0 && t >= cfg_.brownout.start_s &&
         t < cfg_.brownout.start_s + cfg_.brownout.duration_s;
}

bool CdnModel::node_down(std::size_t node, double t) const {
  for (const auto& [start, end] : outages_[node]) {
    if (t >= start && t < end) {
      return true;
    }
    if (t < start) {
      break;  // windows are sorted; nothing later can cover t either
    }
  }
  return false;
}

double CdnModel::origin_utilization(double t) const {
  if (!(cfg_.shed.capacity_sessions > 0.0)) {
    return 0.0;
  }
  // Offered load = arrivals inside the sliding activity window, read off
  // the precomputed arrival times (never a runtime concurrency count,
  // which would see the thread schedule).
  const auto lo = std::lower_bound(arrivals_.begin(), arrivals_.end(),
                                   t - cfg_.shed.active_session_s);
  const auto hi = std::upper_bound(arrivals_.begin(), arrivals_.end(), t);
  const double active = static_cast<double>(hi - lo);
  const double capacity =
      cfg_.shed.capacity_sessions *
      (brownout_at(t) ? cfg_.brownout.capacity_scale : 1.0);
  return active / capacity;
}

double CdnModel::shed_probability(double t) const {
  const double u = origin_utilization(t);
  if (u <= cfg_.shed.threshold) {
    return 0.0;
  }
  return std::min(cfg_.shed.max_shed_prob, (u - cfg_.shed.threshold) / u);
}

double shed_backoff_s(const sim::RetryPolicy& policy,
                      std::uint64_t consecutive_sheds) {
  double d = policy.backoff_base_s;
  for (std::uint64_t k = 0; k < consecutive_sheds; ++k) {
    d *= policy.backoff_factor;
    if (d >= policy.backoff_max_s) {
      break;
    }
  }
  return std::min(d, policy.backoff_max_s);
}

CdnPath::CdnPath(const CdnModel& model, EdgeCache& edge, TitleCdnState& state,
                 std::uint32_t title)
    : model_(&model), edge_(&edge), state_(&state), title_(title) {
  if (!state_->regional) {
    state_->regional =
        std::make_unique<EdgeCache>(model.regional_shard_config());
  }
}

sim::FetchPlan CdnPath::on_chunk_request(const video::Video& video,
                                         std::size_t track, std::size_t index,
                                         double size_bits, double now_s) {
  (void)video;
  // Session-boundary audit (shared by both fleet engines): everything
  // time-dependent below — fetch-window membership, fault schedules,
  // brownouts, offered load — is evaluated in GLOBAL fleet time
  // (arrival_s_ + session clock), never in the session-local clock. A
  // window opened by one session therefore coalesces a later session's
  // request exactly when their global times overlap, independent of which
  // engine ran them or where the session boundary fell; the event engine's
  // chained titles preserve the same serial request order, so these counters
  // fold identically.
  const double now = arrival_s_ + now_s;  // global fleet time
  const CdnConfig& cfg = model_->config();
  CdnStats& st = state_->stats;
  ++st.client_requests;
  ++state_->requests;
  state_->admit_regional = false;

  const ObjectKey key{title_, static_cast<std::uint32_t>(track),
                      static_cast<std::uint64_t>(index)};
  sim::FetchPlan plan;

  // Tier 0: the edge shard.
  if (edge_->lookup(key, size_bits)) {
    ++st.edge_hits;
    plan.added_latency_s = edge_->config().hit_latency_s;
    plan.rate_scale = 1.0;
    plan.edge_hit = true;
    plan.tier = 0;
    return plan;
  }

  // Coalescing: join an upstream fetch whose window covers this request.
  const std::uint64_t packed = EdgeCache::pack(key);
  if (cfg.coalesce) {
    const auto it = state_->inflight.find(packed);
    if (it != state_->inflight.end() && now >= it->second.start_s &&
        now < it->second.ready_s) {
      ++st.coalesced;
      plan.added_latency_s =
          (it->second.ready_s - now) + edge_->config().hit_latency_s;
      plan.rate_scale = 1.0;  // served locally once the shared fetch lands
      plan.tier = it->second.tier;
      plan.coalesced = true;
      return plan;
    }
  }

  const std::size_t node = model_->node_of(title_);
  const bool down = model_->node_down(node, now);
  double upstream_bps = cfg.backhaul_bps;

  // Tier 1: the regional node (skipped entirely while it is down).
  if (down) {
    ++st.failovers;
  } else if (state_->regional->lookup(key, size_bits)) {
    ++st.regional_hits;
    st.regional_hit_bits += size_bits;
    state_->admit_regional = true;  // refresh on delivery
    plan.added_latency_s = cfg.regional.hit_latency_s;
    plan.rate_scale = cfg.regional.rate_scale;
    plan.tier = 1;
    state_->inflight[packed] = CdnInflight{
        now, now + plan.added_latency_s + size_bits / upstream_bps, 1};
    return plan;
  } else {
    state_->admit_regional = true;  // origin response transits the node
  }

  // Tier 2: the origin.
  double latency = edge_->config().miss_latency_s;
  double rate = edge_->config().origin_rate_scale;
  if (down) {
    latency += cfg.regional.failover_latency_s;
  }
  if (model_->brownout_at(now)) {
    ++st.brownout_fetches;
    latency += cfg.brownout.extra_latency_s;
    rate *= cfg.brownout.rate_scale;
    upstream_bps *= cfg.brownout.rate_scale;
  }
  const double shed_p = model_->shed_probability(now);
  if (shed_p > 0.0 && detail::keyed_u01(cfg.seed, title_, state_->requests,
                                        kSaltShed) < shed_p) {
    ++st.shed;
    const double penalty = shed_backoff_s(cfg.retry,
                                          state_->consecutive_sheds);
    ++state_->consecutive_sheds;
    st.shed_wait_s += penalty;
    latency += penalty;
    rate *= cfg.shed.penalty_rate_scale;
    plan.shed = true;
  } else {
    state_->consecutive_sheds = 0;
  }
  ++st.origin_fetches;
  st.origin_fetch_bits += size_bits;
  state_->inflight[packed] =
      CdnInflight{now, now + latency + size_bits / upstream_bps, 2};
  plan.added_latency_s = latency;
  plan.rate_scale = rate;
  plan.tier = 2;
  return plan;
}

void CdnPath::on_chunk_delivered(const video::Video& video, std::size_t track,
                                 std::size_t index, double size_bits,
                                 double now_s) {
  (void)video;
  const ObjectKey key{title_, static_cast<std::uint32_t>(track),
                      static_cast<std::uint64_t>(index)};
  edge_->admit(key, size_bits);
  if (state_->admit_regional &&
      !model_->node_down(model_->node_of(title_), arrival_s_ + now_s)) {
    state_->regional->admit(key, size_bits);
  }
  state_->admit_regional = false;
}

}  // namespace vbr::fleet
