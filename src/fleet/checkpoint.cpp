#include "fleet/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <charconv>
#include <string_view>
#include <system_error>

#include "fleet/rng.h"
#include "obs/json_util.h"
#include "obs/jsonl_io.h"
#include "obs/trace_sink.h"

namespace vbr::fleet {

KillSchedule KillSchedule::random(std::uint64_t seed, std::uint64_t round,
                                  std::uint64_t num_sessions) {
  KillSchedule k;
  if (num_sessions > 0) {
    constexpr std::uint64_t kSaltKill = 0xc4a05;
    k.after_sessions =
        1 + static_cast<std::uint64_t>(
                detail::keyed_u01(seed, round, 0, kSaltKill) *
                static_cast<double>(num_sessions));
    k.after_sessions = std::min(k.after_sessions, num_sessions);
  }
  return k;
}

// ---------------------------------------------------------------------------
// Spec fingerprint.

namespace {

/// mix64-chained hasher over the workload-defining fields of a FleetSpec.
/// Doubles hash by bit pattern (exact), strings by content.
class SpecHasher {
 public:
  void u64(std::uint64_t v) { h_ = detail::mix64(h_ ^ v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 2); }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) {
      h_ = detail::mix64(h_ ^ static_cast<unsigned char>(c));
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x9e3779b97f4a7c15ULL;
};

void hash_fault(SpecHasher& h, const net::FaultConfig& f) {
  h.f64(f.connect_failure_prob);
  h.f64(f.mid_drop_prob);
  h.f64(f.timeout_prob);
  h.f64(f.connect_fail_delay_s);
  h.f64(f.timeout_s);
  h.u64(f.seed);
}

void hash_retry(SpecHasher& h, const sim::RetryPolicy& r) {
  h.u64(r.max_attempts);
  h.f64(r.backoff_base_s);
  h.f64(r.backoff_factor);
  h.f64(r.backoff_max_s);
  h.f64(r.backoff_jitter);
  h.f64(r.request_timeout_s);
  h.b(r.downgrade_on_failure);
  h.u64(r.downgrade_after);
  h.b(r.resume_partial);
}

void hash_class(SpecHasher& h, const FleetClientClass& c) {
  h.str(c.label);
  h.f64(c.weight);
  hash_fault(h, c.fault);
  hash_retry(h, c.retry);
  h.b(static_cast<bool>(c.make_estimator));
  h.b(static_cast<bool>(c.make_size_provider));
}

}  // namespace

std::uint64_t fleet_experiment_fingerprint(const FleetSpec& spec) {
  SpecHasher h;
  h.b(spec.experiment.enabled());
  h.u64(spec.experiment.seed);
  h.u64(spec.experiment.trace_strata);
  h.b(spec.experiment.score_qoe_models);
  h.u64(spec.experiment.arms.size());
  for (const FleetClientClass& c : spec.experiment.arms) {
    hash_class(h, c);
  }
  return h.value();
}

std::uint64_t fleet_spec_fingerprint(const FleetSpec& spec) {
  SpecHasher h;
  h.u64(FleetCheckpoint::kVersion);
  h.u64(spec.seed);
  h.u64(fleet_experiment_fingerprint(spec));

  h.u64(spec.catalog.num_titles);
  h.f64(spec.catalog.zipf_alpha);
  h.u64(spec.catalog.seed);
  h.f64(spec.catalog.title_duration_s);
  h.f64(spec.catalog.chunk_duration_s);
  h.f64(spec.catalog.cap_factor);
  h.u64(static_cast<std::uint64_t>(spec.catalog.codec));

  h.u64(static_cast<std::uint64_t>(spec.arrivals.kind));
  h.f64(spec.arrivals.rate_per_s);
  h.f64(spec.arrivals.horizon_s);
  h.u64(spec.arrivals.max_sessions);
  h.f64(spec.arrivals.burst_start_s);
  h.f64(spec.arrivals.burst_duration_s);
  h.f64(spec.arrivals.burst_multiplier);
  h.u64(spec.arrivals.seed);

  h.u64(spec.classes.size());
  for (const FleetClientClass& c : spec.classes) {
    hash_class(h, c);
  }

  h.f64(spec.watch.full_watch_prob);
  h.f64(spec.watch.mean_partial_s);
  h.f64(spec.watch.min_watch_s);

  h.b(spec.use_cache);
  h.f64(spec.cache.capacity_bits);
  h.f64(spec.cache.hit_latency_s);
  h.f64(spec.cache.miss_latency_s);
  h.f64(spec.cache.origin_rate_scale);
  h.f64(spec.cache.max_object_fraction);

  h.b(spec.cdn.enabled);
  h.b(spec.cdn.coalesce);
  h.f64(spec.cdn.backhaul_bps);
  h.u64(spec.cdn.seed);
  h.u64(spec.cdn.regional.nodes);
  h.f64(spec.cdn.regional.capacity_bits);
  h.f64(spec.cdn.regional.hit_latency_s);
  h.f64(spec.cdn.regional.rate_scale);
  h.u64(spec.cdn.regional.outages_per_node);
  h.f64(spec.cdn.regional.outage_duration_s);
  h.f64(spec.cdn.regional.failover_latency_s);
  h.f64(spec.cdn.brownout.start_s);
  h.f64(spec.cdn.brownout.duration_s);
  h.f64(spec.cdn.brownout.rate_scale);
  h.f64(spec.cdn.brownout.extra_latency_s);
  h.f64(spec.cdn.brownout.capacity_scale);
  h.f64(spec.cdn.shed.capacity_sessions);
  h.f64(spec.cdn.shed.active_session_s);
  h.f64(spec.cdn.shed.threshold);
  h.f64(spec.cdn.shed.max_shed_prob);
  h.f64(spec.cdn.shed.penalty_rate_scale);
  hash_retry(h, spec.cdn.retry);

  h.f64(spec.session.startup_latency_s);
  h.f64(spec.session.max_buffer_s);
  h.f64(spec.session.request_rtt_s);
  h.b(spec.session.enable_abandonment);
  h.f64(spec.session.abandon_check_fraction);
  hash_fault(h, spec.session.fault);
  hash_retry(h, spec.session.retry);
  h.f64(spec.session.watch_duration_s);
  h.u64(spec.session.watchdog_max_decisions);
  h.f64(spec.session.watchdog_max_sim_s);

  h.u64(static_cast<std::uint64_t>(spec.metric));
  h.f64(spec.qoe.low_quality_threshold);
  h.u64(spec.qoe.top_class);

  h.u64(spec.traces.size());
  for (const net::Trace& t : spec.traces) {
    h.str(t.name());
    h.f64(t.sample_period_s());
    h.u64(t.samples_bps().size());
    for (const double s : t.samples_bps()) {
      h.f64(s);
    }
  }

  // Telemetry collection is workload-defining for a checkpoint: a snapshot
  // taken without per-session events cannot resume a run that merges them.
  h.b(spec.trace != nullptr);
  h.b(spec.metrics != nullptr);
  return h.value();
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

constexpr std::string_view kMagic = "VBRFLEETCKPT";

void sp(std::string& s) { s += ' '; }

void put_u64(std::string& s, std::uint64_t v) {
  obs::detail::append_uint(s, v);
}

void put_f64(std::string& s, double v) { obs::detail::append_double(s, v); }

void put_stats_fields(std::string& s, const EdgeCacheStats& st) {
  put_u64(s, st.lookups);
  sp(s);
  put_u64(s, st.hits);
  sp(s);
  put_f64(s, st.hit_bits);
  sp(s);
  put_f64(s, st.miss_bits);
  sp(s);
  put_u64(s, st.evictions);
  sp(s);
  put_f64(s, st.evicted_bits);
  sp(s);
  put_u64(s, st.rejected);
}

void put_stats(std::string& s, const EdgeCacheStats& st) {
  s += "stats ";
  put_stats_fields(s, st);
  s += '\n';
}

void put_dvec(std::string& s, const char* tag,
              const std::vector<double>& v) {
  s += tag;
  sp(s);
  put_u64(s, v.size());
  for (const double x : v) {
    sp(s);
    put_f64(s, x);
  }
  s += '\n';
}

void put_uvec(std::string& s, const char* tag,
              const std::vector<std::uint64_t>& v) {
  s += tag;
  sp(s);
  put_u64(s, v.size());
  for (const std::uint64_t x : v) {
    sp(s);
    put_u64(s, x);
  }
  s += '\n';
}

/// Sequential line/token reader over the checkpoint payload. Every helper
/// throws CheckpointError naming the line on any malformed input, so load()
/// can never silently misread a damaged file.
class Reader {
 public:
  explicit Reader(std::string_view payload) : s_(payload) {}

  [[nodiscard]] std::string_view next_line() {
    if (pos_ >= s_.size()) {
      fail("unexpected end of file");
    }
    const std::size_t nl = s_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      fail("unterminated line");
    }
    const std::string_view line = s_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    ++line_no_;
    return line;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }

  [[noreturn]] void fail(const std::string& what) const {
    throw CheckpointError("checkpoint: " + what + " (line " +
                          std::to_string(line_no_) + ")");
  }

  [[nodiscard]] std::uint64_t line_no() const { return line_no_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  std::uint64_t line_no_ = 0;
};

/// Tokenizer over one line.
class Tokens {
 public:
  Tokens(std::string_view line, Reader& r) : s_(line), r_(&r) {}

  void expect(std::string_view tag) {
    if (word() != tag) {
      r_->fail("expected '" + std::string(tag) + "' record");
    }
  }

  [[nodiscard]] std::string_view word() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') {
      ++pos_;
    }
    if (start == pos_) {
      r_->fail("missing token");
    }
    return s_.substr(start, pos_ - start);
  }

  [[nodiscard]] std::uint64_t u64() {
    const std::string_view w = word();
    std::uint64_t v = 0;
    const auto r = std::from_chars(w.data(), w.data() + w.size(), v);
    if (r.ec != std::errc() || r.ptr != w.data() + w.size()) {
      r_->fail("expected unsigned integer");
    }
    return v;
  }

  [[nodiscard]] double f64() {
    const std::string_view w = word();
    double v = 0.0;
    const auto r = std::from_chars(w.data(), w.data() + w.size(), v);
    if (r.ec != std::errc() || r.ptr != w.data() + w.size()) {
      r_->fail("expected number");
    }
    return v;
  }

  [[nodiscard]] bool flag() {
    const std::uint64_t v = u64();
    if (v > 1) {
      r_->fail("expected 0/1 flag");
    }
    return v == 1;
  }

  /// JSON-quoted string (metric names may contain spaces).
  [[nodiscard]] std::string quoted() {
    skip_space();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      r_->fail("expected quoted string");
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) {
        break;
      }
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            r_->fail("truncated escape in string");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hx = s_[pos_++];
            code <<= 4;
            if (hx >= '0' && hx <= '9') {
              code |= static_cast<unsigned>(hx - '0');
            } else if (hx >= 'a' && hx <= 'f') {
              code |= static_cast<unsigned>(hx - 'a') + 10;
            } else {
              r_->fail("bad escape digit in string");
            }
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          r_->fail("unknown string escape");
      }
    }
    r_->fail("unterminated quoted string");
  }

  void done() {
    skip_space();
    if (pos_ != s_.size()) {
      r_->fail("trailing tokens");
    }
  }

 private:
  void skip_space() {
    while (pos_ < s_.size() && s_[pos_] == ' ') {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  Reader* r_;
};

std::vector<double> read_dvec(Reader& r, const char* tag) {
  Tokens t(r.next_line(), r);
  t.expect(tag);
  const std::uint64_t n = t.u64();
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(t.f64());
  }
  t.done();
  return out;
}

std::vector<std::uint64_t> read_uvec(Reader& r, const char* tag) {
  Tokens t(r.next_line(), r);
  t.expect(tag);
  const std::uint64_t n = t.u64();
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(t.u64());
  }
  t.done();
  return out;
}

EdgeCacheStats read_stats(Reader& r, const char* tag = "stats") {
  Tokens t(r.next_line(), r);
  t.expect(tag);
  EdgeCacheStats st;
  st.lookups = t.u64();
  st.hits = t.u64();
  st.hit_bits = t.f64();
  st.miss_bits = t.f64();
  st.evictions = t.u64();
  st.evicted_bits = t.f64();
  st.rejected = t.u64();
  t.done();
  return st;
}

void put_entries(std::string& s, const char* tag,
                 const std::vector<EdgeCacheEntrySnapshot>& entries) {
  s += tag;
  sp(s);
  put_u64(s, entries.size());
  s += '\n';
  for (const EdgeCacheEntrySnapshot& e : entries) {
    s += "e ";
    put_u64(s, e.title);
    sp(s);
    put_u64(s, e.track);
    sp(s);
    put_u64(s, e.chunk);
    sp(s);
    put_f64(s, e.bits);
    s += '\n';
  }
}

std::vector<EdgeCacheEntrySnapshot> read_entries(Reader& r, const char* tag) {
  Tokens t(r.next_line(), r);
  t.expect(tag);
  const std::uint64_t n = t.u64();
  t.done();
  std::vector<EdgeCacheEntrySnapshot> out;
  out.reserve(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    Tokens e(r.next_line(), r);
    e.expect("e");
    EdgeCacheEntrySnapshot snap;
    snap.title = static_cast<std::uint32_t>(e.u64());
    snap.track = static_cast<std::uint32_t>(e.u64());
    snap.chunk = e.u64();
    snap.bits = e.f64();
    e.done();
    out.push_back(snap);
  }
  return out;
}

void put_registry(std::string& s, const obs::MetricsRegistry& reg) {
  using obs::detail::append_json_string;
  s += "counters ";
  put_u64(s, reg.counters().size());
  s += '\n';
  for (const auto& [name, c] : reg.counters()) {
    s += "c ";
    append_json_string(s, name);
    sp(s);
    put_f64(s, c.value());
    s += '\n';
  }
  s += "gauges ";
  put_u64(s, reg.gauges().size());
  s += '\n';
  for (const auto& [name, g] : reg.gauges()) {
    s += "g ";
    append_json_string(s, name);
    sp(s);
    put_u64(s, g.written() ? 1 : 0);
    sp(s);
    put_f64(s, g.value());
    s += '\n';
  }
  s += "hists ";
  put_u64(s, reg.histograms().size());
  s += '\n';
  for (const auto& [name, hh] : reg.histograms()) {
    s += "h ";
    append_json_string(s, name);
    sp(s);
    put_u64(s, hh.wall_clock() ? 1 : 0);
    sp(s);
    put_u64(s, hh.bounds().size());
    for (const double b : hh.bounds()) {
      sp(s);
      put_f64(s, b);
    }
    for (const std::uint64_t c : hh.counts()) {
      sp(s);
      put_u64(s, c);
    }
    sp(s);
    put_u64(s, hh.count());
    sp(s);
    put_f64(s, hh.sum());
    sp(s);
    put_f64(s, hh.min());
    sp(s);
    put_f64(s, hh.max());
    s += '\n';
  }
}

obs::MetricsRegistry read_registry(Reader& r) {
  obs::MetricsRegistry reg;
  {
    Tokens t(r.next_line(), r);
    t.expect("counters");
    const std::uint64_t n = t.u64();
    t.done();
    for (std::uint64_t i = 0; i < n; ++i) {
      Tokens ct(r.next_line(), r);
      ct.expect("c");
      const std::string name = ct.quoted();
      const double v = ct.f64();
      ct.done();
      reg.counter(name).add(v);
    }
  }
  {
    Tokens t(r.next_line(), r);
    t.expect("gauges");
    const std::uint64_t n = t.u64();
    t.done();
    for (std::uint64_t i = 0; i < n; ++i) {
      Tokens gt(r.next_line(), r);
      gt.expect("g");
      const std::string name = gt.quoted();
      const bool written = gt.flag();
      const double v = gt.f64();
      gt.done();
      obs::Gauge& g = reg.gauge(name);
      if (written) {
        g.set(v);
      }
    }
  }
  {
    Tokens t(r.next_line(), r);
    t.expect("hists");
    const std::uint64_t n = t.u64();
    t.done();
    for (std::uint64_t i = 0; i < n; ++i) {
      Tokens ht(r.next_line(), r);
      ht.expect("h");
      const std::string name = ht.quoted();
      const bool wall = ht.flag();
      const std::uint64_t nb = ht.u64();
      std::vector<double> bounds;
      bounds.reserve(nb);
      for (std::uint64_t j = 0; j < nb; ++j) {
        bounds.push_back(ht.f64());
      }
      std::vector<std::uint64_t> counts;
      counts.reserve(nb + 1);
      for (std::uint64_t j = 0; j < nb + 1; ++j) {
        counts.push_back(ht.u64());
      }
      const std::uint64_t count = ht.u64();
      const double sum = ht.f64();
      const double mn = ht.f64();
      const double mx = ht.f64();
      ht.done();
      try {
        reg.histogram(name, bounds, wall).restore(counts, count, sum, mn, mx);
      } catch (const std::invalid_argument& e) {
        r.fail(std::string("bad histogram record: ") + e.what());
      }
    }
  }
  return reg;
}

}  // namespace

void FleetCheckpoint::save(const std::string& path) const {
  std::string s;
  s.reserve(1 << 16);
  s += kMagic;
  sp(s);
  put_u64(s, version);
  s += '\n';
  s += "meta ";
  put_u64(s, spec_fingerprint);
  sp(s);
  put_u64(s, num_sessions);
  sp(s);
  put_u64(s, num_titles);
  sp(s);
  put_u64(s, max_tracks);
  sp(s);
  put_u64(s, sessions_done);
  sp(s);
  put_u64(s, experiment_fingerprint);
  s += '\n';
  // v4 (event engine) adds exactly one line; everything else is shared.
  if (version >= kEventVersion) {
    s += "engine ";
    put_u64(s, events_done);
    s += '\n';
  }

  s += "titles ";
  put_u64(s, titles.size());
  s += '\n';
  for (const TitleState& ts : titles) {
    s += "title ";
    put_u64(s, ts.index);
    sp(s);
    put_u64(s, ts.done);
    sp(s);
    put_u64(s, ts.total);
    sp(s);
    put_u64(s, ts.has_shard ? 1 : 0);
    s += '\n';
    put_stats(s, ts.stats);
    put_uvec(s, "hits", ts.track_hits);
    put_uvec(s, "tot", ts.track_total);
    put_entries(s, "entries", ts.shard_entries);
    // CDN hierarchy state (v2): uniform — all zeros when the CDN is off.
    s += "cdn ";
    put_u64(s, ts.cdn_requests);
    sp(s);
    put_u64(s, ts.cdn_consecutive_sheds);
    sp(s);
    put_u64(s, ts.has_regional ? 1 : 0);
    s += '\n';
    s += "cstats ";
    put_u64(s, ts.cdn_stats.client_requests);
    sp(s);
    put_u64(s, ts.cdn_stats.edge_hits);
    sp(s);
    put_u64(s, ts.cdn_stats.regional_hits);
    sp(s);
    put_u64(s, ts.cdn_stats.origin_fetches);
    sp(s);
    put_u64(s, ts.cdn_stats.coalesced);
    sp(s);
    put_u64(s, ts.cdn_stats.shed);
    sp(s);
    put_u64(s, ts.cdn_stats.failovers);
    sp(s);
    put_u64(s, ts.cdn_stats.brownout_fetches);
    sp(s);
    put_f64(s, ts.cdn_stats.shed_wait_s);
    sp(s);
    put_f64(s, ts.cdn_stats.regional_hit_bits);
    sp(s);
    put_f64(s, ts.cdn_stats.origin_fetch_bits);
    s += '\n';
    s += "rstats ";
    put_stats_fields(s, ts.regional_stats);
    s += '\n';
    put_entries(s, "rentries", ts.regional_entries);
    s += "inflight ";
    put_u64(s, ts.inflight.size());
    s += '\n';
    for (const auto& [key, fl] : ts.inflight) {
      s += "if ";
      put_u64(s, key);
      sp(s);
      put_f64(s, fl.start_s);
      sp(s);
      put_f64(s, fl.ready_s);
      sp(s);
      put_u64(s, fl.tier);
      s += '\n';
    }
  }

  s += "sessions ";
  put_u64(s, sessions.size());
  s += '\n';
  for (const SessionState& ss : sessions) {
    const FleetSessionRecord& rec = ss.record;
    s += "session ";
    put_u64(s, rec.session_id);
    sp(s);
    put_f64(s, rec.arrival_s);
    sp(s);
    put_u64(s, rec.title);
    sp(s);
    put_u64(s, rec.class_index);
    sp(s);
    put_u64(s, rec.trace_index);
    sp(s);
    put_f64(s, rec.watch_duration_s);
    sp(s);
    put_u64(s, rec.chunks);
    sp(s);
    put_u64(s, rec.edge_hits);
    sp(s);
    put_f64(s, rec.edge_hit_bits);
    sp(s);
    put_f64(s, rec.origin_bits);
    sp(s);
    put_u64(s, rec.regional_hits);
    sp(s);
    put_u64(s, rec.coalesced_chunks);
    sp(s);
    put_u64(s, rec.shed_chunks);
    sp(s);
    put_f64(s, rec.regional_bits);
    sp(s);
    put_u64(s, rec.watchdog_aborted ? 1 : 0);
    s += '\n';
    s += "qoe ";
    put_f64(s, rec.qoe.q4_quality_mean);
    sp(s);
    put_f64(s, rec.qoe.q4_quality_median);
    sp(s);
    put_f64(s, rec.qoe.q13_quality_mean);
    sp(s);
    put_f64(s, rec.qoe.all_quality_mean);
    sp(s);
    put_f64(s, rec.qoe.low_quality_pct);
    sp(s);
    put_f64(s, rec.qoe.rebuffer_s);
    sp(s);
    put_f64(s, rec.qoe.startup_delay_s);
    sp(s);
    put_f64(s, rec.qoe.avg_quality_change);
    sp(s);
    put_f64(s, rec.qoe.data_usage_mb);
    s += '\n';
    put_dvec(s, "qv4", rec.qoe.q4_qualities);
    put_dvec(s, "qv13", rec.qoe.q13_qualities);
    put_dvec(s, "qvall", rec.qoe.all_qualities);
    s += "faults ";
    put_u64(s, rec.faults.chunks);
    sp(s);
    put_u64(s, rec.faults.skipped);
    sp(s);
    put_u64(s, rec.faults.downgraded);
    sp(s);
    put_u64(s, rec.faults.attempts);
    sp(s);
    put_u64(s, rec.faults.connect_failures);
    sp(s);
    put_u64(s, rec.faults.mid_drops);
    sp(s);
    put_u64(s, rec.faults.timeouts);
    sp(s);
    put_f64(s, rec.faults.backoff_wait_s);
    sp(s);
    put_f64(s, rec.faults.resumed_mb);
    sp(s);
    put_f64(s, rec.faults.wasted_mb);
    s += '\n';
    // Experiment stratum + per-QoE-model scores (v3; zero/empty outside
    // experiment runs, serialized unconditionally for a uniform format).
    s += "abx ";
    put_u64(s, rec.stratum);
    s += '\n';
    put_dvec(s, "scores", rec.qoe_scores);
    s += "events ";
    put_u64(s, ss.has_events ? 1 : 0);
    sp(s);
    put_u64(s, ss.events.size());
    s += '\n';
    for (const obs::DecisionEvent& ev : ss.events) {
      // Each event rides as a checksummed canonical JSONL line — the same
      // torn/corrupt detection as the durable trace sinks.
      s += obs::checksummed_line(obs::to_jsonl(ev));
      s += '\n';
    }
    s += "metrics ";
    put_u64(s, ss.has_metrics ? 1 : 0);
    s += '\n';
    if (ss.has_metrics) {
      put_registry(s, ss.metrics);
    }
  }

  // Whole-payload trailer: everything above, checksummed.
  s += "end ";
  {
    // Covers the payload plus the "end " prefix itself (load() mirrors).
    const std::uint32_t crc =
        obs::line_checksum(std::string_view(s.data(), s.size()));
    static const char* digits = "0123456789abcdef";
    for (int shift = 28; shift >= 0; shift -= 4) {
      s += digits[(crc >> shift) & 0xFu];
    }
  }
  s += '\n';

  // Atomic durable write: temp + fsync + rename + directory fsync. A crash
  // at any byte of this sequence leaves either the old checkpoint or the
  // new one — never a torn file under the real name.
  const std::string tmp = path + ".tmp";
  errno = 0;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::system_error(errno != 0 ? errno : EIO, std::generic_category(),
                            "FleetCheckpoint::save: cannot open '" + tmp +
                                "'");
  }
  std::size_t done = 0;
  while (done < s.size()) {
    const ssize_t nw = ::write(fd, s.data() + done, s.size() - done);
    if (nw < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::system_error(err, std::generic_category(),
                              "FleetCheckpoint::save: write failed on '" +
                                  tmp + "'");
    }
    done += static_cast<std::size_t>(nw);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::system_error(err, std::generic_category(),
                            "FleetCheckpoint::save: fsync failed on '" + tmp +
                                "'");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::system_error(err, std::generic_category(),
                            "FleetCheckpoint::save: cannot rename '" + tmp +
                                "' to '" + path + "'");
  }
  // Make the rename itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best effort; some filesystems refuse dir fsync
    ::close(dfd);
  }
}

FleetCheckpoint FleetCheckpoint::load(const std::string& path) {
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::system_error(errno != 0 ? errno : EIO, std::generic_category(),
                            "FleetCheckpoint::load: cannot open '" + path +
                                "'");
  }
  std::string data;
  char buf[1 << 16];
  while (true) {
    const ssize_t nr = ::read(fd, buf, sizeof buf);
    if (nr < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      throw std::system_error(err, std::generic_category(),
                              "FleetCheckpoint::load: read failed on '" +
                                  path + "'");
    }
    if (nr == 0) {
      break;
    }
    data.append(buf, static_cast<std::size_t>(nr));
  }
  ::close(fd);

  // Trailer first: the last line must be "end <8hex>" covering everything
  // before it. A truncated or bit-rotted file fails here with one clear
  // error instead of a confusing parse failure deep inside.
  if (data.empty() || data.back() != '\n') {
    throw CheckpointError("checkpoint: truncated file (no trailer)");
  }
  const std::size_t tail_nl = data.find_last_of('\n', data.size() - 2);
  const std::size_t trailer_at =
      tail_nl == std::string::npos ? 0 : tail_nl + 1;
  const std::string_view trailer(data.data() + trailer_at,
                                 data.size() - trailer_at - 1);
  if (trailer.size() != 12 || trailer.substr(0, 4) != "end ") {
    throw CheckpointError("checkpoint: missing 'end' trailer");
  }
  std::uint32_t stored = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    const char c = trailer[i];
    std::uint32_t nib = 0;
    if (c >= '0' && c <= '9') {
      nib = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nib = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      throw CheckpointError("checkpoint: malformed trailer checksum");
    }
    stored = (stored << 4) | nib;
  }
  // The checksum covers the payload plus the literal "end " prefix, i.e.
  // everything up to the hex digits — matching how save() computed it.
  const std::string_view covered(data.data(), trailer_at + 4);
  if (obs::line_checksum(covered) != stored) {
    throw CheckpointError(
        "checkpoint: trailer checksum mismatch (corrupt or torn file)");
  }

  Reader r(std::string_view(data.data(), trailer_at));
  FleetCheckpoint ck;
  {
    Tokens t(r.next_line(), r);
    const std::string_view magic = t.word();
    if (magic != kMagic) {
      throw CheckpointError("checkpoint: bad magic '" + std::string(magic) +
                            "'");
    }
    const std::uint64_t version = t.u64();
    t.done();
    if (version != kVersion && version != kEventVersion) {
      throw CheckpointError("checkpoint: unsupported version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kVersion) + " or " +
                            std::to_string(kEventVersion) + ")");
    }
    ck.version = static_cast<std::uint32_t>(version);
  }

  {
    Tokens t(r.next_line(), r);
    t.expect("meta");
    ck.spec_fingerprint = t.u64();
    ck.num_sessions = t.u64();
    ck.num_titles = t.u64();
    ck.max_tracks = t.u64();
    ck.sessions_done = t.u64();
    ck.experiment_fingerprint = t.u64();
    t.done();
  }

  // v4 carries the event-engine progress line; a v3 file must not have it
  // (Tokens::expect on "titles" below rejects a stray "engine" line).
  if (ck.version >= kEventVersion) {
    Tokens t(r.next_line(), r);
    t.expect("engine");
    ck.events_done = t.u64();
    t.done();
  }

  {
    Tokens t(r.next_line(), r);
    t.expect("titles");
    const std::uint64_t n = t.u64();
    t.done();
    ck.titles.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      TitleState ts;
      Tokens tt(r.next_line(), r);
      tt.expect("title");
      ts.index = tt.u64();
      ts.done = tt.u64();
      ts.total = tt.u64();
      ts.has_shard = tt.flag();
      tt.done();
      if (ts.index >= ck.num_titles || ts.done > ts.total) {
        r.fail("inconsistent title record");
      }
      ts.stats = read_stats(r);
      ts.track_hits = read_uvec(r, "hits");
      ts.track_total = read_uvec(r, "tot");
      if (ts.track_hits.size() != ck.max_tracks ||
          ts.track_total.size() != ck.max_tracks) {
        r.fail("track vector size mismatch");
      }
      ts.shard_entries = read_entries(r, "entries");
      {
        Tokens ct(r.next_line(), r);
        ct.expect("cdn");
        ts.cdn_requests = ct.u64();
        ts.cdn_consecutive_sheds = ct.u64();
        ts.has_regional = ct.flag();
        ct.done();
      }
      {
        Tokens cs(r.next_line(), r);
        cs.expect("cstats");
        ts.cdn_stats.client_requests = cs.u64();
        ts.cdn_stats.edge_hits = cs.u64();
        ts.cdn_stats.regional_hits = cs.u64();
        ts.cdn_stats.origin_fetches = cs.u64();
        ts.cdn_stats.coalesced = cs.u64();
        ts.cdn_stats.shed = cs.u64();
        ts.cdn_stats.failovers = cs.u64();
        ts.cdn_stats.brownout_fetches = cs.u64();
        ts.cdn_stats.shed_wait_s = cs.f64();
        ts.cdn_stats.regional_hit_bits = cs.f64();
        ts.cdn_stats.origin_fetch_bits = cs.f64();
        cs.done();
      }
      ts.regional_stats = read_stats(r, "rstats");
      ts.regional_entries = read_entries(r, "rentries");
      {
        Tokens it(r.next_line(), r);
        it.expect("inflight");
        const std::uint64_t ni = it.u64();
        it.done();
        ts.inflight.reserve(ni);
        for (std::uint64_t j = 0; j < ni; ++j) {
          Tokens f(r.next_line(), r);
          f.expect("if");
          const std::uint64_t key = f.u64();
          CdnInflight fl;
          fl.start_s = f.f64();
          fl.ready_s = f.f64();
          fl.tier = static_cast<std::uint32_t>(f.u64());
          f.done();
          if (fl.tier > 2) {
            r.fail("inflight tier out of range");
          }
          ts.inflight.emplace_back(key, fl);
        }
      }
      ck.titles.push_back(std::move(ts));
    }
  }

  {
    Tokens t(r.next_line(), r);
    t.expect("sessions");
    const std::uint64_t n = t.u64();
    t.done();
    ck.sessions.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      SessionState ss;
      FleetSessionRecord& rec = ss.record;
      Tokens st(r.next_line(), r);
      st.expect("session");
      rec.session_id = st.u64();
      rec.arrival_s = st.f64();
      rec.title = st.u64();
      rec.class_index = st.u64();
      rec.trace_index = st.u64();
      rec.watch_duration_s = st.f64();
      rec.chunks = st.u64();
      rec.edge_hits = st.u64();
      rec.edge_hit_bits = st.f64();
      rec.origin_bits = st.f64();
      rec.regional_hits = st.u64();
      rec.coalesced_chunks = st.u64();
      rec.shed_chunks = st.u64();
      rec.regional_bits = st.f64();
      rec.watchdog_aborted = st.flag();
      st.done();
      if (rec.session_id >= ck.num_sessions) {
        r.fail("session id out of range");
      }
      Tokens qt(r.next_line(), r);
      qt.expect("qoe");
      rec.qoe.q4_quality_mean = qt.f64();
      rec.qoe.q4_quality_median = qt.f64();
      rec.qoe.q13_quality_mean = qt.f64();
      rec.qoe.all_quality_mean = qt.f64();
      rec.qoe.low_quality_pct = qt.f64();
      rec.qoe.rebuffer_s = qt.f64();
      rec.qoe.startup_delay_s = qt.f64();
      rec.qoe.avg_quality_change = qt.f64();
      rec.qoe.data_usage_mb = qt.f64();
      qt.done();
      rec.qoe.q4_qualities = read_dvec(r, "qv4");
      rec.qoe.q13_qualities = read_dvec(r, "qv13");
      rec.qoe.all_qualities = read_dvec(r, "qvall");
      Tokens ft(r.next_line(), r);
      ft.expect("faults");
      rec.faults.chunks = ft.u64();
      rec.faults.skipped = ft.u64();
      rec.faults.downgraded = ft.u64();
      rec.faults.attempts = ft.u64();
      rec.faults.connect_failures = ft.u64();
      rec.faults.mid_drops = ft.u64();
      rec.faults.timeouts = ft.u64();
      rec.faults.backoff_wait_s = ft.f64();
      rec.faults.resumed_mb = ft.f64();
      rec.faults.wasted_mb = ft.f64();
      ft.done();
      Tokens at(r.next_line(), r);
      at.expect("abx");
      rec.stratum = static_cast<std::uint32_t>(at.u64());
      at.done();
      rec.qoe_scores = read_dvec(r, "scores");
      Tokens evt(r.next_line(), r);
      evt.expect("events");
      ss.has_events = evt.flag();
      const std::uint64_t nev = evt.u64();
      evt.done();
      ss.events.reserve(nev);
      for (std::uint64_t j = 0; j < nev; ++j) {
        const std::string_view line = r.next_line();
        std::string_view payload;
        if (!obs::verify_checksummed_line(line, payload)) {
          r.fail("event line failed its checksum");
        }
        try {
          ss.events.push_back(obs::parse_jsonl(payload));
        } catch (const std::invalid_argument& e) {
          r.fail(std::string("bad event line: ") + e.what());
        }
      }
      Tokens mt(r.next_line(), r);
      mt.expect("metrics");
      ss.has_metrics = mt.flag();
      mt.done();
      if (ss.has_metrics) {
        ss.metrics = read_registry(r);
      }
      ck.sessions.push_back(std::move(ss));
    }
  }

  if (!r.at_end()) {
    r.fail("trailing data after last session");
  }
  return ck;
}

}  // namespace vbr::fleet
