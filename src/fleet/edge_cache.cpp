#include "fleet/edge_cache.h"

#include <iterator>
#include <stdexcept>

namespace vbr::fleet {

void EdgeCacheConfig::validate() const {
  if (!(capacity_bits > 0.0)) {
    throw std::invalid_argument("EdgeCacheConfig: non-positive capacity");
  }
  if (hit_latency_s < 0.0 || miss_latency_s < 0.0) {
    throw std::invalid_argument("EdgeCacheConfig: negative latency");
  }
  if (!(origin_rate_scale > 0.0) || origin_rate_scale > 1.0) {
    throw std::invalid_argument(
        "EdgeCacheConfig: origin_rate_scale must be in (0, 1]");
  }
  if (!(max_object_fraction > 0.0) || max_object_fraction > 1.0) {
    throw std::invalid_argument(
        "EdgeCacheConfig: max_object_fraction must be in (0, 1]");
  }
}

void EdgeCacheStats::merge(const EdgeCacheStats& other) {
  lookups += other.lookups;
  hits += other.hits;
  hit_bits += other.hit_bits;
  miss_bits += other.miss_bits;
  evictions += other.evictions;
  evicted_bits += other.evicted_bits;
  rejected += other.rejected;
}

EdgeCache::EdgeCache(const EdgeCacheConfig& cfg) : config_(cfg) {
  cfg.validate();
}

std::uint64_t EdgeCache::pack(const ObjectKey& key) {
  // 20 bits of title, 8 of track, 36 of chunk: collision-free for any
  // catalog this simulator can build, and cheap to hash.
  if (key.title >= (1u << 20) || key.track >= (1u << 8) ||
      key.chunk >= (1ULL << 36)) {
    throw std::invalid_argument("EdgeCache: object key out of range");
  }
  return (static_cast<std::uint64_t>(key.title) << 44) |
         (static_cast<std::uint64_t>(key.track) << 36) | key.chunk;
}

bool EdgeCache::lookup(const ObjectKey& key, double size_bits) {
  ++stats_.lookups;
  const auto it = index_.find(pack(key));
  if (it == index_.end()) {
    stats_.miss_bits += size_bits;
    return false;
  }
  ++stats_.hits;
  stats_.hit_bits += size_bits;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: most recent
  return true;
}

void EdgeCache::admit(const ObjectKey& key, double size_bits) {
  if (!(size_bits > 0.0)) {
    throw std::invalid_argument("EdgeCache::admit: non-positive size");
  }
  const std::uint64_t packed = pack(key);
  const auto it = index_.find(packed);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency only
    return;
  }
  if (size_bits > config_.max_object_fraction * config_.capacity_bits) {
    ++stats_.rejected;
    return;
  }
  while (used_bits_ + size_bits > config_.capacity_bits) {
    evict_lru();
  }
  lru_.push_front(Entry{packed, size_bits});
  index_.emplace(packed, lru_.begin());
  used_bits_ += size_bits;
}

bool EdgeCache::contains(const ObjectKey& key) const {
  return index_.find(pack(key)) != index_.end();
}

std::vector<EdgeCacheEntrySnapshot> EdgeCache::snapshot() const {
  std::vector<EdgeCacheEntrySnapshot> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {  // front = MRU, so snapshot is MRU-first
    EdgeCacheEntrySnapshot snap;
    snap.title = static_cast<std::uint32_t>(e.key >> 44);
    snap.track = static_cast<std::uint32_t>((e.key >> 36) & 0xFFu);
    snap.chunk = e.key & ((1ULL << 36) - 1);
    snap.bits = e.bits;
    out.push_back(snap);
  }
  return out;
}

void EdgeCache::restore(const std::vector<EdgeCacheEntrySnapshot>& entries,
                        const EdgeCacheStats& stats) {
  if (!index_.empty()) {
    throw std::invalid_argument(
        "EdgeCache::restore: cache must be empty before restore");
  }
  // The snapshot is MRU-first; rebuilding by push_back preserves that
  // order exactly (front stays most recently used).
  double total = 0.0;
  for (const EdgeCacheEntrySnapshot& snap : entries) {
    if (!(snap.bits > 0.0)) {
      throw std::invalid_argument(
          "EdgeCache::restore: non-positive entry size");
    }
    total += snap.bits;
    if (total > config_.capacity_bits) {
      throw std::invalid_argument(
          "EdgeCache::restore: entries exceed capacity");
    }
    const std::uint64_t packed =
        pack(ObjectKey{snap.title, snap.track, snap.chunk});
    if (index_.count(packed) != 0) {
      throw std::invalid_argument("EdgeCache::restore: duplicate entry");
    }
    lru_.push_back(Entry{packed, snap.bits});
    index_.emplace(packed, std::prev(lru_.end()));
  }
  used_bits_ = total;
  stats_ = stats;
}

void EdgeCache::evict_lru() {
  // Only reachable while an admissible object still lacks room, so the
  // cache cannot be empty here.
  const Entry& victim = lru_.back();
  used_bits_ -= victim.bits;
  ++stats_.evictions;
  stats_.evicted_bits += victim.bits;
  index_.erase(victim.key);
  lru_.pop_back();
}

sim::FetchPlan EdgeCachePath::on_chunk_request(const video::Video& video,
                                               std::size_t track,
                                               std::size_t index,
                                               double size_bits,
                                               double now_s) {
  (void)video;
  (void)now_s;
  const ObjectKey key{title_, static_cast<std::uint32_t>(track),
                      static_cast<std::uint64_t>(index)};
  sim::FetchPlan plan;
  if (cache_->lookup(key, size_bits)) {
    plan.added_latency_s = cache_->config().hit_latency_s;
    plan.rate_scale = 1.0;
    plan.edge_hit = true;
  } else {
    plan.added_latency_s = cache_->config().miss_latency_s;
    plan.rate_scale = cache_->config().origin_rate_scale;
    plan.edge_hit = false;
  }
  return plan;
}

void EdgeCachePath::on_chunk_delivered(const video::Video& video,
                                       std::size_t track, std::size_t index,
                                       double size_bits, double now_s) {
  (void)video;
  (void)now_s;
  cache_->admit(ObjectKey{title_, static_cast<std::uint32_t>(track),
                          static_cast<std::uint64_t>(index)},
                size_bits);
}

}  // namespace vbr::fleet
