#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/complexity_classifier.h"
#include "fleet/rng.h"
#include "metrics/stats.h"
#include "obs/json_util.h"

namespace vbr::fleet {

namespace {

// Draw salts: one per independent per-session decision stream.
constexpr std::uint64_t kSaltZipf = 0xf1ee70;
constexpr std::uint64_t kSaltClass = 0xf1ee71;
constexpr std::uint64_t kSaltTrace = 0xf1ee72;
constexpr std::uint64_t kSaltWatchFull = 0xf1ee73;
constexpr std::uint64_t kSaltWatchTail = 0xf1ee74;

/// Everything an arriving session is, decided up front as pure functions of
/// (spec.seed, session index) so workers never race on a draw.
struct SessionDraw {
  std::size_t title = 0;
  std::size_t cls = 0;
  std::size_t trace = 0;
  double watch_s = 0.0;  ///< 0 = watches to the end.
};

}  // namespace

void WatchConfig::validate() const {
  if (full_watch_prob < 0.0 || full_watch_prob > 1.0) {
    throw std::invalid_argument(
        "WatchConfig: full_watch_prob must be in [0, 1]");
  }
  if (!(mean_partial_s > 0.0)) {
    throw std::invalid_argument("WatchConfig: non-positive partial mean");
  }
  if (min_watch_s < 0.0) {
    throw std::invalid_argument("WatchConfig: negative minimum watch");
  }
}

FleetResult run_fleet(const FleetSpec& spec) {
  spec.catalog.validate();
  spec.arrivals.validate();
  spec.watch.validate();
  if (spec.use_cache) {
    spec.cache.validate();
  }
  if (spec.classes.empty()) {
    throw std::invalid_argument("run_fleet: no client classes");
  }
  double total_weight = 0.0;
  for (const FleetClientClass& c : spec.classes) {
    if (!c.make_scheme) {
      throw std::invalid_argument("run_fleet: class without make_scheme");
    }
    if (!(c.weight > 0.0)) {
      throw std::invalid_argument("run_fleet: class weight must be > 0");
    }
    c.fault.validate();
    if (c.fault.any()) {
      c.retry.validate();
    }
    total_weight += c.weight;
  }
  if (spec.traces.empty()) {
    throw std::invalid_argument("run_fleet: no traces");
  }
  if (spec.threads > sim::kMaxThreads) {
    throw std::invalid_argument("run_fleet: threads exceeds kMaxThreads (" +
                                std::to_string(sim::kMaxThreads) + ")");
  }
  if (spec.session.trace != nullptr || spec.session.metrics != nullptr) {
    throw std::invalid_argument(
        "run_fleet: wire telemetry through FleetSpec::trace/metrics — "
        "session sinks are not thread-safe");
  }
  if (spec.session.size_provider != nullptr) {
    throw std::invalid_argument(
        "run_fleet: size knowledge is per client class "
        "(FleetClientClass::make_size_provider), not the shared session "
        "config");
  }
  if (spec.session.download_hook != nullptr) {
    throw std::invalid_argument(
        "run_fleet: the delivery path is owned by the fleet cache model; "
        "configure FleetSpec::cache instead of a session hook");
  }
  sim::validate_session_config(spec.session, "run_fleet");

  const Catalog catalog(spec.catalog);
  const std::size_t num_titles = catalog.num_titles();
  const std::vector<double> arrivals = generate_arrivals(spec.arrivals);
  if (arrivals.empty()) {
    throw std::invalid_argument(
        "run_fleet: arrival process yielded zero sessions (raise the rate, "
        "the horizon, or max_sessions)");
  }
  const std::size_t n = arrivals.size();

  // Per-session workload draws, all up front, all counter-based.
  const ZipfSampler zipf(num_titles, spec.catalog.zipf_alpha,
                         detail::derive_seed(spec.seed, 0, kSaltZipf));
  std::vector<SessionDraw> draws(n);
  std::vector<std::vector<std::size_t>> by_title(num_titles);
  for (std::size_t i = 0; i < n; ++i) {
    SessionDraw& d = draws[i];
    d.title = zipf.sample(i);
    const double uc = detail::keyed_u01(spec.seed, i, 0, kSaltClass);
    double acc = 0.0;
    d.cls = spec.classes.size() - 1;  // guard against float residue at 1.0
    for (std::size_t c = 0; c < spec.classes.size(); ++c) {
      acc += spec.classes[c].weight / total_weight;
      if (uc < acc) {
        d.cls = c;
        break;
      }
    }
    d.trace = std::min(
        spec.traces.size() - 1,
        static_cast<std::size_t>(
            detail::keyed_u01(spec.seed, i, 0, kSaltTrace) *
            static_cast<double>(spec.traces.size())));
    if (detail::keyed_u01(spec.seed, i, 0, kSaltWatchFull) >=
        spec.watch.full_watch_prob) {
      const double u = detail::keyed_u01(spec.seed, i, 0, kSaltWatchTail);
      d.watch_s = spec.watch.min_watch_s -
                  spec.watch.mean_partial_s * std::log(1.0 - u);
    }
    by_title[d.title].push_back(i);
  }

  // Private telemetry slots, folded in session-id order after the join.
  const bool telemetry_on = spec.trace != nullptr || spec.metrics != nullptr;
  std::vector<std::unique_ptr<obs::MemoryTraceSink>> sinks;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  if (telemetry_on) {
    sinks.resize(n);
    registries.resize(n);
  }

  FleetResult result;
  result.sessions.resize(n);
  result.cache_enabled = spec.use_cache;

  std::size_t max_tracks = 0;
  for (std::size_t k = 0; k < num_titles; ++k) {
    max_tracks = std::max(max_tracks, catalog.title(k).num_tracks());
  }

  // Worker-owned per-title aggregates: each row is written only by the
  // worker that claimed the title, then folded in title order.
  std::vector<EdgeCacheStats> shard_stats(num_titles);
  std::vector<std::vector<std::uint64_t>> track_hits(
      num_titles, std::vector<std::uint64_t>(max_tracks, 0));
  std::vector<std::vector<std::uint64_t>> track_total(
      num_titles, std::vector<std::uint64_t>(max_tracks, 0));

  // Total capacity splits evenly across per-title shards.
  EdgeCacheConfig shard_cfg = spec.cache;
  if (spec.use_cache) {
    shard_cfg.capacity_bits =
        spec.cache.capacity_bits / static_cast<double>(num_titles);
  }

  const sim::EstimatorFactory default_estimator =
      sim::default_estimator_factory();

  const unsigned threads =
      spec.threads > 0 ? spec.threads
                       : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t title_batch =
      spec.title_batch > 0 ? spec.title_batch : 4;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        // Worker-owned reusable actors, one per client class, built lazily
        // and reset by run_session before each use. Reuse is bit-exact
        // (reset() restores construction state; the differential and
        // batched-vs-unbatched fleet tests pin it) and removes the
        // per-session scheme/provider allocations from the hot loop.
        std::vector<std::unique_ptr<abr::AbrScheme>> class_schemes(
            spec.classes.size());
        std::vector<std::unique_ptr<video::ChunkSizeProvider>>
            class_providers(spec.classes.size());
        while (true) {
          // Batched claim: one fetch_add hands this worker a contiguous run
          // of titles. Folds are in title/session order, so the batch size
          // cannot influence any result byte.
          const std::size_t base = next.fetch_add(title_batch);
          if (base >= num_titles || failed.load()) {
            return;
          }
          const std::size_t limit = std::min(num_titles, base + title_batch);
          for (std::size_t k = base; k < limit; ++k) {
            const std::vector<std::size_t>& ids = by_title[k];
            if (ids.empty()) {
              continue;
            }
            const video::Video& title_video = catalog.title(k);
            const core::ComplexityClassifier classifier(title_video);
            const std::vector<std::size_t>& classes = classifier.classes();
            metrics::QoeConfig qoe = spec.qoe;
            qoe.top_class = classifier.num_classes() - 1;

            // One cache shard per title; its sessions run serially in
            // arrival order, so shard state is schedule-independent.
            std::unique_ptr<EdgeCache> shard;
            std::unique_ptr<EdgeCachePath> path;
            if (spec.use_cache) {
              shard = std::make_unique<EdgeCache>(shard_cfg);
              // The path adapter is stateless per session (cache + title id),
              // so one instance serves every session of the title.
              path = std::make_unique<EdgeCachePath>(
                  *shard, static_cast<std::uint32_t>(k));
            }

            for (const std::size_t sid : ids) {
              const SessionDraw& d = draws[sid];
              const FleetClientClass& cls = spec.classes[d.cls];
              if (!class_schemes[d.cls]) {
                class_schemes[d.cls] = cls.make_scheme();
              }
              abr::AbrScheme& scheme = *class_schemes[d.cls];
              const std::unique_ptr<net::BandwidthEstimator> estimator =
                  (cls.make_estimator ? cls.make_estimator
                                      : default_estimator)(spec.traces[d.trace]);
              if (cls.make_size_provider && !class_providers[d.cls]) {
                class_providers[d.cls] = cls.make_size_provider();
              }
              video::ChunkSizeProvider* sizes =
                  cls.make_size_provider ? class_providers[d.cls].get()
                                         : nullptr;

              sim::SessionConfig sc = spec.session;
              sc.fault = cls.fault;
              sc.retry = cls.retry;
              sc.watch_duration_s = d.watch_s;
              sc.session_id = sid;
              sc.fleet_session = true;
              sc.fleet_arrival_s = arrivals[sid];
              sc.fleet_title = k;
              if (sizes != nullptr) {
                sc.size_provider = sizes;
              }
              if (path) {
                sc.download_hook = path.get();
              }
              if (telemetry_on) {
                if (spec.trace != nullptr) {
                  sinks[sid] = std::make_unique<obs::MemoryTraceSink>();
                  sc.trace = sinks[sid].get();
                }
                if (spec.metrics != nullptr) {
                  registries[sid] = std::make_unique<obs::MetricsRegistry>();
                  sc.metrics = registries[sid].get();
                }
              }

              const sim::SessionResult sr = sim::run_session(
                  title_video, spec.traces[d.trace], scheme, *estimator, sc);

              FleetSessionRecord rec;
              rec.session_id = sid;
              rec.arrival_s = arrivals[sid];
              rec.title = k;
              rec.class_index = d.cls;
              rec.trace_index = d.trace;
              rec.watch_duration_s = d.watch_s;
              rec.faults = sr.fault_summary();
              rec.chunks = sr.chunks.size();
              for (const sim::ChunkRecord& c : sr.chunks) {
                if (c.skipped) {
                  continue;
                }
                ++track_total[k][c.track];
                if (c.edge_hit) {
                  ++track_hits[k][c.track];
                  ++rec.edge_hits;
                  rec.edge_hit_bits += c.size_bits;
                } else {
                  rec.origin_bits += c.size_bits;
                }
              }
              const std::vector<metrics::PlayedChunk> played =
                  sr.to_played_chunks(spec.metric, classes);
              if (played.empty()) {
                // Nothing watchable (total outage): timing metrics only.
                metrics::QoeSummary s;
                s.rebuffer_s = sr.total_rebuffer_s;
                s.startup_delay_s = sr.startup_delay_s;
                s.low_quality_pct = 100.0;
                rec.qoe = std::move(s);
              } else {
                rec.qoe = metrics::compute_qoe(played, sr.total_rebuffer_s,
                                               sr.startup_delay_s, qoe);
              }
              result.sessions[sid] = std::move(rec);
            }
            if (shard) {
              shard_stats[k] = shard->stats();
            }
          }
        }
      } catch (...) {
        failed.store(true);
        throw;  // fleet bugs are fatal, as in run_experiment
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  // Deterministic folds: title order for shard aggregates, session order
  // for everything per-session.
  for (std::size_t k = 0; k < num_titles; ++k) {
    result.cache.merge(shard_stats[k]);
  }
  {
    std::vector<std::uint64_t> hits(max_tracks, 0);
    std::vector<std::uint64_t> total(max_tracks, 0);
    std::vector<std::uint64_t> dec_hits(10, 0);
    std::vector<std::uint64_t> dec_total(10, 0);
    for (std::size_t k = 0; k < num_titles; ++k) {
      const std::size_t decile = catalog.popularity_decile(k);
      for (std::size_t tr = 0; tr < max_tracks; ++tr) {
        hits[tr] += track_hits[k][tr];
        total[tr] += track_total[k][tr];
        dec_hits[decile] += track_hits[k][tr];
        dec_total[decile] += track_total[k][tr];
      }
    }
    result.hit_ratio_by_track.assign(max_tracks, 0.0);
    for (std::size_t tr = 0; tr < max_tracks; ++tr) {
      result.hit_ratio_by_track[tr] =
          total[tr] == 0 ? 0.0
                         : static_cast<double>(hits[tr]) /
                               static_cast<double>(total[tr]);
    }
    result.hit_ratio_by_popularity_decile.assign(10, 0.0);
    for (std::size_t dd = 0; dd < 10; ++dd) {
      result.hit_ratio_by_popularity_decile[dd] =
          dec_total[dd] == 0 ? 0.0
                             : static_cast<double>(dec_hits[dd]) /
                                   static_cast<double>(dec_total[dd]);
    }
  }

  std::vector<double> session_quality;
  std::vector<double> session_bits;
  session_quality.reserve(n);
  session_bits.reserve(n);
  result.per_class.resize(spec.classes.size());
  for (std::size_t c = 0; c < spec.classes.size(); ++c) {
    result.per_class[c].label = spec.classes[c].label.empty()
                                    ? spec.classes[c].make_scheme()->name()
                                    : spec.classes[c].label;
  }
  for (const FleetSessionRecord& rec : result.sessions) {
    result.edge_hit_bits += rec.edge_hit_bits;
    result.origin_bits += rec.origin_bits;
    session_quality.push_back(rec.qoe.all_quality_mean);
    session_bits.push_back(rec.qoe.data_usage_mb);
    FleetSchemeReport& cr = result.per_class[rec.class_index];
    ++cr.sessions;
    cr.mean_all_quality += rec.qoe.all_quality_mean;
    cr.mean_q4_quality += rec.qoe.q4_quality_mean;
    cr.mean_low_quality_pct += rec.qoe.low_quality_pct;
    cr.mean_rebuffer_s += rec.qoe.rebuffer_s;
    cr.mean_startup_delay_s += rec.qoe.startup_delay_s;
    cr.mean_data_usage_mb += rec.qoe.data_usage_mb;
  }
  for (FleetSchemeReport& cr : result.per_class) {
    if (cr.sessions > 0) {
      const double inv = 1.0 / static_cast<double>(cr.sessions);
      cr.mean_all_quality *= inv;
      cr.mean_q4_quality *= inv;
      cr.mean_low_quality_pct *= inv;
      cr.mean_rebuffer_s *= inv;
      cr.mean_startup_delay_s *= inv;
      cr.mean_data_usage_mb *= inv;
    }
  }
  result.jain_quality = stats::jain_index(session_quality);
  result.jain_bits = stats::jain_index(session_bits);

  // Telemetry fold: session-id order with one monotone global sequence —
  // the same merged-stream discipline as run_experiment.
  if (spec.trace != nullptr) {
    std::uint64_t global_seq = 0;
    for (const std::unique_ptr<obs::MemoryTraceSink>& sink : sinks) {
      if (!sink) {
        continue;
      }
      for (const obs::DecisionEvent& ev : sink->events()) {
        obs::DecisionEvent merged = ev;
        merged.seq = global_seq++;
        spec.trace->on_decision(merged);
      }
    }
    spec.trace->flush();
  }
  if (spec.metrics != nullptr) {
    for (const std::unique_ptr<obs::MetricsRegistry>& reg : registries) {
      if (reg) {
        spec.metrics->merge(*reg);
      }
    }
  }
  return result;
}

void FleetResult::write_json(std::ostream& out) const {
  using obs::detail::append_double;
  using obs::detail::append_json_string;
  using obs::detail::append_uint;

  std::string s;
  s.reserve(1024);
  s += "{\"sessions\":";
  append_uint(s, sessions.size());
  s += ",\"cache\":{\"enabled\":";
  s += cache_enabled ? "true" : "false";
  s += ",\"lookups\":";
  append_uint(s, cache.lookups);
  s += ",\"hits\":";
  append_uint(s, cache.hits);
  s += ",\"hit_ratio\":";
  append_double(s, cache.hit_ratio());
  s += ",\"byte_hit_ratio\":";
  append_double(s, cache.byte_hit_ratio());
  s += ",\"evictions\":";
  append_uint(s, cache.evictions);
  s += ",\"rejected\":";
  append_uint(s, cache.rejected);
  s += ",\"edge_hit_bits\":";
  append_double(s, edge_hit_bits);
  s += ",\"origin_bits\":";
  append_double(s, origin_bits);
  s += "},\"hit_ratio_by_track\":[";
  for (std::size_t i = 0; i < hit_ratio_by_track.size(); ++i) {
    if (i > 0) {
      s += ',';
    }
    append_double(s, hit_ratio_by_track[i]);
  }
  s += "],\"hit_ratio_by_popularity_decile\":[";
  for (std::size_t i = 0; i < hit_ratio_by_popularity_decile.size(); ++i) {
    if (i > 0) {
      s += ',';
    }
    append_double(s, hit_ratio_by_popularity_decile[i]);
  }
  s += "],\"fairness\":{\"jain_quality\":";
  append_double(s, jain_quality);
  s += ",\"jain_bits\":";
  append_double(s, jain_bits);
  s += "},\"per_class\":[";
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    const FleetSchemeReport& r = per_class[c];
    if (c > 0) {
      s += ',';
    }
    s += "{\"label\":";
    append_json_string(s, r.label);
    s += ",\"sessions\":";
    append_uint(s, r.sessions);
    s += ",\"mean_quality\":";
    append_double(s, r.mean_all_quality);
    s += ",\"mean_q4_quality\":";
    append_double(s, r.mean_q4_quality);
    s += ",\"low_quality_pct\":";
    append_double(s, r.mean_low_quality_pct);
    s += ",\"mean_rebuffer_s\":";
    append_double(s, r.mean_rebuffer_s);
    s += ",\"mean_startup_s\":";
    append_double(s, r.mean_startup_delay_s);
    s += ",\"mean_data_mb\":";
    append_double(s, r.mean_data_usage_mb);
    s += "}";
  }
  s += "]}";
  out << s << '\n';
}

}  // namespace vbr::fleet
