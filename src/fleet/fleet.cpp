#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/complexity_classifier.h"
#include "fleet/checkpoint.h"
#include "fleet/engine.h"
#include "fleet/fleet_internal.h"
#include "fleet/rng.h"
#include "metrics/qoe_model.h"
#include "obs/json_util.h"

namespace vbr::fleet {

namespace {

// Draw salts: one per independent per-session decision stream.
constexpr std::uint64_t kSaltZipf = 0xf1ee70;
constexpr std::uint64_t kSaltClass = 0xf1ee71;
constexpr std::uint64_t kSaltTrace = 0xf1ee72;
constexpr std::uint64_t kSaltWatchFull = 0xf1ee73;
constexpr std::uint64_t kSaltWatchTail = 0xf1ee74;
constexpr std::uint64_t kSaltArmPerm = 0xf1ee75;

// SessionDraw lives in fleet_internal.h now — both engines consume it.
using detail::SessionDraw;

/// Bandwidth-rank bucket per trace: traces sorted by mean sample bandwidth
/// (ties by index), rank mapped onto `strata` equal buckets. Pure function
/// of the trace set, so every thread count sees the same stratification.
std::vector<std::size_t> trace_rank_buckets(std::span<const net::Trace> traces,
                                            std::size_t strata) {
  const std::size_t m = traces.size();
  std::vector<double> mean_bps(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& samples = traces[i].samples_bps();
    double acc = 0.0;
    for (const double s : samples) acc += s;
    mean_bps[i] = samples.empty()
                      ? 0.0
                      : acc / static_cast<double>(samples.size());
  }
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return mean_bps[a] < mean_bps[b];
                   });
  std::vector<std::size_t> bucket(m, 0);
  for (std::size_t rank = 0; rank < m; ++rank) {
    bucket[order[rank]] = rank * strata / m;
  }
  return bucket;
}

/// Permuted-block arm assignment: the `pos`-th session of block `block` in
/// stratum `stratum` gets the `pos`-th entry of a seeded Fisher-Yates
/// permutation of [0, num_arms). Counter-based (no RNG stream), so the
/// assignment depends only on (seed, stratum, block, pos).
std::size_t permuted_block_arm(std::uint64_t seed, std::uint32_t stratum,
                               std::uint64_t block, std::size_t pos,
                               std::size_t num_arms) {
  std::vector<std::size_t> perm(num_arms);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = num_arms - 1; i > 0; --i) {
    const double u = detail::keyed_u01(seed, stratum,
                                       block * num_arms + i, kSaltArmPerm);
    const std::size_t j = std::min(
        i, static_cast<std::size_t>(u * static_cast<double>(i + 1)));
    std::swap(perm[i], perm[j]);
  }
  return perm[pos];
}

/// Session-boundary barrier for checkpoints and cooperative kills.
///
/// Workers call on_session_complete() after every session. When a
/// checkpoint (or kill) is due, every active worker parks here; the last
/// arriver — or a worker exiting while the rest are parked — serializes the
/// shared state and releases everyone. Because all workers sit at session
/// boundaries during the snapshot, it can never observe a half-run session,
/// and the mutex hand-off makes each worker's plain writes (done counts,
/// shard contents, records) visible to the snapshotting thread.
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(unsigned workers, bool have_path,
                        std::uint64_t every, std::uint64_t kill_after,
                        std::uint64_t initial_done,
                        std::function<void(std::uint64_t)> save_fn)
      : active_(workers),
        have_path_(have_path),
        every_(every),
        kill_after_(kill_after),
        done_(initial_done),
        save_fn_(std::move(save_fn)) {
    if (have_path_ && every_ > 0) {
      next_at_ = (done_ / every_ + 1) * every_;
    }
  }

  [[nodiscard]] bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool killed() const { return killed_.load(); }
  [[nodiscard]] std::uint64_t sessions_done() {
    std::lock_guard<std::mutex> g(mu_);
    return done_;
  }

  void on_session_complete() {
    std::unique_lock<std::mutex> lk(mu_);
    ++done_;
    if (kill_after_ > 0 && !killed_.load() && done_ >= kill_after_) {
      kill_pending_ = true;
    }
    if (kill_pending_ ||
        (have_path_ && every_ > 0 && done_ >= next_at_)) {
      request_ = true;
    }
    if (!request_) {
      return;
    }
    ++paused_;
    if (paused_ == active_) {
      perform();
    } else {
      const std::uint64_t g = gen_;
      cv_.wait(lk, [&] { return gen_ != g; });
    }
  }

  void worker_exit() {
    std::unique_lock<std::mutex> lk(mu_);
    --active_;
    if (request_ && active_ > 0 && paused_ == active_) {
      // The exiting worker became the effective last arriver: it must run
      // the snapshot, or the parked workers wait forever.
      perform();
    } else if (request_ && active_ == 0) {
      release();  // defensive: never strand a waiter
    }
  }

 private:
  /// Runs the snapshot under the lock, then releases the barrier. On a save
  /// failure the barrier is still released (and the fleet stopped) before
  /// the error propagates — a full disk must surface as one clean
  /// std::system_error from run_fleet, not a deadlocked worker pool.
  void perform() {
    if (have_path_) {
      try {
        save_fn_(done_);
      } catch (...) {
        stop_.store(true);
        release();
        throw;
      }
    }
    if (kill_pending_) {
      killed_.store(true);
      stop_.store(true);
    }
    if (every_ > 0) {
      while (next_at_ <= done_) {
        next_at_ += every_;
      }
    }
    release();
  }

  void release() {
    request_ = false;
    kill_pending_ = false;
    paused_ = 0;
    ++gen_;
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  unsigned active_;
  unsigned paused_ = 0;
  bool have_path_;
  std::uint64_t every_;
  std::uint64_t kill_after_;
  std::uint64_t done_;
  std::uint64_t next_at_ = 0;
  bool request_ = false;
  bool kill_pending_ = false;
  std::uint64_t gen_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> killed_{false};
  std::function<void(std::uint64_t)> save_fn_;
};

[[nodiscard]] bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fclose(f);
  return true;
}

}  // namespace

namespace detail {

FleetSessionRecord build_session_record(
    const FleetSpec& spec, const SessionDraw& d, std::size_t sid,
    double arrival_s, std::size_t title, const sim::SessionResult& sr,
    const std::vector<std::size_t>& classes, const metrics::QoeConfig& qoe,
    const metrics::QoeModelSuite& qoe_suite, bool experiment_on,
    std::vector<std::uint64_t>& title_track_hits,
    std::vector<std::uint64_t>& title_track_total) {
  FleetSessionRecord rec;
  rec.session_id = sid;
  rec.arrival_s = arrival_s;
  rec.title = title;
  rec.class_index = d.cls;
  rec.trace_index = d.trace;
  rec.watch_duration_s = d.watch_s;
  rec.faults = sr.fault_summary();
  rec.chunks = sr.chunks.size();
  rec.watchdog_aborted = sr.watchdog_aborted;
  for (const sim::ChunkRecord& c : sr.chunks) {
    if (c.skipped) {
      continue;
    }
    ++title_track_total[c.track];
    if (c.edge_hit) {
      ++title_track_hits[c.track];
      ++rec.edge_hits;
      rec.edge_hit_bits += c.size_bits;
    } else if (c.coalesced) {
      // Joined a shared upstream fetch: no new origin egress, so the
      // hit-ratio views count it like an edge hit.
      ++title_track_hits[c.track];
      ++rec.coalesced_chunks;
      rec.edge_hit_bits += c.size_bits;
    } else if (c.delivery_tier == 1) {
      ++title_track_hits[c.track];
      ++rec.regional_hits;
      rec.regional_bits += c.size_bits;
    } else {
      rec.origin_bits += c.size_bits;
    }
    if (c.shed) {
      ++rec.shed_chunks;
    }
  }
  const std::vector<metrics::PlayedChunk> played =
      sr.to_played_chunks(spec.metric, classes);
  if (played.empty()) {
    // Nothing watchable (total outage): timing metrics only.
    metrics::QoeSummary s;
    s.rebuffer_s = sr.total_rebuffer_s;
    s.startup_delay_s = sr.startup_delay_s;
    s.low_quality_pct = 100.0;
    rec.qoe = std::move(s);
  } else {
    rec.qoe = metrics::compute_qoe(played, sr.total_rebuffer_s,
                                   sr.startup_delay_s, qoe);
  }
  if (experiment_on) {
    rec.stratum = d.stratum;
    rec.qoe_scores.reserve(qoe_suite.size());
    for (std::size_t m = 0; m < qoe_suite.size(); ++m) {
      const metrics::QoeModelSpec& ms = qoe_suite.at(m);
      rec.qoe_scores.push_back(ms.model->score(sim::qoe_session_view(
          sr, ms.metric, spec.catalog.chunk_duration_s)));
    }
  }
  return rec;
}

void SessionFold::add(FleetResult& result, const FleetSessionRecord& rec) {
  result.edge_hit_bits += rec.edge_hit_bits;
  result.origin_bits += rec.origin_bits;
  if (rec.watchdog_aborted) {
    ++result.watchdog_aborted_sessions;
  }
  ++count;
  quality_sum += rec.qoe.all_quality_mean;
  quality_sum_sq += rec.qoe.all_quality_mean * rec.qoe.all_quality_mean;
  bits_sum += rec.qoe.data_usage_mb;
  bits_sum_sq += rec.qoe.data_usage_mb * rec.qoe.data_usage_mb;
  FleetSchemeReport& cr = result.per_class[rec.class_index];
  ++cr.sessions;
  cr.mean_all_quality += rec.qoe.all_quality_mean;
  cr.mean_q4_quality += rec.qoe.q4_quality_mean;
  cr.mean_low_quality_pct += rec.qoe.low_quality_pct;
  cr.mean_rebuffer_s += rec.qoe.rebuffer_s;
  cr.mean_startup_delay_s += rec.qoe.startup_delay_s;
  cr.mean_data_usage_mb += rec.qoe.data_usage_mb;
  for (std::size_t m = 0; m < rec.qoe_scores.size(); ++m) {
    cr.mean_qoe_scores[m] += rec.qoe_scores[m];
  }
}

double SessionFold::jain(std::uint64_t n, double sum, double sum_sq) {
  // Mirrors stats::jain_index over the materialized vector, operation for
  // operation (same accumulation order, same guard), so the streaming and
  // materializing paths produce the same bits.
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

void TelemetryFold::add(const obs::MemoryTraceSink* sink,
                        const obs::MetricsRegistry* registry) {
  if (trace != nullptr && sink != nullptr) {
    for (const obs::DecisionEvent& ev : sink->events()) {
      obs::DecisionEvent merged = ev;
      merged.seq = global_seq++;
      trace->on_decision(merged);
    }
  }
  if (metrics != nullptr && registry != nullptr) {
    metrics->merge(*registry);
  }
}

void TelemetryFold::finish() {
  if (trace != nullptr) {
    trace->flush();
  }
}

void collect_checkpoint_sessions(
    const FleetSpec& spec, const FleetResult& result,
    const std::vector<std::unique_ptr<obs::MemoryTraceSink>>& sinks,
    const std::vector<std::unique_ptr<obs::MetricsRegistry>>& registries,
    const std::vector<std::size_t>& done_sids, FleetCheckpoint& ck) {
  ck.sessions.reserve(done_sids.size());
  for (const std::size_t sid : done_sids) {
    FleetCheckpoint::SessionState ss;
    ss.record = result.sessions[sid];
    if (spec.trace != nullptr && sinks[sid]) {
      ss.has_events = true;
      ss.events.assign(sinks[sid]->events().begin(),
                       sinks[sid]->events().end());
    }
    if (spec.metrics != nullptr && registries[sid]) {
      ss.has_metrics = true;
      ss.metrics = *registries[sid];
    }
    ck.sessions.push_back(std::move(ss));
  }
}

}  // namespace detail

void WatchConfig::validate() const {
  if (full_watch_prob < 0.0 || full_watch_prob > 1.0) {
    throw std::invalid_argument(
        "WatchConfig: full_watch_prob must be in [0, 1]");
  }
  if (!(mean_partial_s > 0.0)) {
    throw std::invalid_argument("WatchConfig: non-positive partial mean");
  }
  if (min_watch_s < 0.0) {
    throw std::invalid_argument("WatchConfig: negative minimum watch");
  }
}

void FleetSpec::validate() const {
  catalog.validate();
  arrivals.validate();
  watch.validate();
  if (use_cache) {
    cache.validate();
    // Cross-field: a miss that is cheaper than a hit inverts the whole
    // delivery model (every downstream latency comparison assumes the
    // origin is the slow path).
    if (cache.miss_latency_s <= cache.hit_latency_s) {
      throw std::invalid_argument(
          "FleetSpec.cache.miss_latency_s: must exceed cache.hit_latency_s "
          "(the origin path cannot be faster than an edge hit)");
    }
  }
  if (cdn.enabled) {
    if (!use_cache) {
      throw std::invalid_argument(
          "FleetSpec.cdn.enabled: requires use_cache — the CDN hierarchy "
          "extends the edge tier");
    }
    cdn.validate();
    // Cross-field sanity of the hierarchy: each tier must be bigger and
    // slower than the one below it, or the topology is unsatisfiable.
    if (cdn.regional.capacity_bits < cache.capacity_bits) {
      throw std::invalid_argument(
          "FleetSpec.cdn.regional.capacity_bits: smaller than the edge "
          "tier's cache.capacity_bits — the hierarchy is unsatisfiable");
    }
    if (cdn.regional.hit_latency_s <= cache.hit_latency_s ||
        cdn.regional.hit_latency_s >= cache.miss_latency_s) {
      throw std::invalid_argument(
          "FleetSpec.cdn.regional.hit_latency_s: must lie strictly between "
          "cache.hit_latency_s and cache.miss_latency_s (edge < regional < "
          "origin)");
    }
  }
  const auto validate_class = [](const FleetClientClass& c,
                                 const std::string& who) {
    if (!c.make_scheme) {
      throw std::invalid_argument(who + ".make_scheme: missing scheme "
                                        "factory");
    }
    c.fault.validate();
    if (c.fault.any()) {
      c.retry.validate();
    }
  };
  if (experiment.enabled()) {
    if (!classes.empty()) {
      throw std::invalid_argument(
          "FleetSpec.experiment.arms: arms replace the client classes — "
          "leave FleetSpec.classes empty in an experiment run");
    }
    if (experiment.arms.size() < 2) {
      throw std::invalid_argument(
          "FleetSpec.experiment.arms: an experiment needs at least two "
          "arms");
    }
    if (experiment.arms.size() > 64) {
      throw std::invalid_argument(
          "FleetSpec.experiment.arms: at most 64 arms");
    }
    if (experiment.trace_strata < 1 || experiment.trace_strata > 64) {
      throw std::invalid_argument(
          "FleetSpec.experiment.trace_strata: must be in [1, 64]");
    }
    for (std::size_t i = 0; i < experiment.arms.size(); ++i) {
      const FleetClientClass& a = experiment.arms[i];
      const std::string who =
          "FleetSpec.experiment.arms[" + std::to_string(i) + "]";
      if (a.label.empty()) {
        throw std::invalid_argument(
            who + ".label: arms need explicit, unique labels (they key the "
                  "A/B report)");
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (experiment.arms[j].label == a.label) {
          throw std::invalid_argument(
              who + ".label: duplicate label '" + a.label + "' (arm " +
              std::to_string(j) + " already uses it)");
        }
      }
      validate_class(a, who);
    }
  } else {
    if (classes.empty()) {
      throw std::invalid_argument(
          "FleetSpec.classes: empty — at least one client class is "
          "required");
    }
    for (std::size_t i = 0; i < classes.size(); ++i) {
      const FleetClientClass& c = classes[i];
      const std::string who = "FleetSpec.classes[" + std::to_string(i) + "]";
      if (!(c.weight > 0.0)) {
        throw std::invalid_argument(
            who + ".weight: must be > 0 (got " + std::to_string(c.weight) +
            ")");
      }
      validate_class(c, who);
    }
  }
  if (traces.empty()) {
    throw std::invalid_argument(
        "FleetSpec.traces: empty — sessions need at least one network "
        "trace");
  }
  if (title_batch == 0) {
    throw std::invalid_argument(
        "FleetSpec.title_batch: must be >= 1 (titles are claimed in "
        "batches)");
  }
  if (threads > sim::kMaxThreads) {
    throw std::invalid_argument(
        "FleetSpec.threads: exceeds kMaxThreads (" +
        std::to_string(sim::kMaxThreads) + ")");
  }
  if (session.trace != nullptr || session.metrics != nullptr) {
    throw std::invalid_argument(
        "FleetSpec.session.trace/metrics: wire telemetry through "
        "FleetSpec::trace/metrics — session sinks are not thread-safe");
  }
  if (session.size_provider != nullptr) {
    throw std::invalid_argument(
        "FleetSpec.session.size_provider: size knowledge is per client "
        "class (FleetClientClass::make_size_provider), not the shared "
        "session config");
  }
  if (session.download_hook != nullptr) {
    throw std::invalid_argument(
        "FleetSpec.session.download_hook: the delivery path is owned by "
        "the fleet cache model; configure FleetSpec::cache instead");
  }
  sim::validate_session_config(session, "FleetSpec.session");
  if (resume && checkpoint_path.empty()) {
    throw std::invalid_argument(
        "FleetSpec.resume: set checkpoint_path to resume from");
  }
  if (stream_aggregation) {
    if (engine != FleetEngine::kEvent) {
      throw std::invalid_argument(
          "FleetSpec.stream_aggregation: requires the event engine "
          "(FleetSpec.engine = FleetEngine::kEvent)");
    }
    if (!checkpoint_path.empty() || kill.after_sessions > 0 || resume) {
      throw std::invalid_argument(
          "FleetSpec.stream_aggregation: incompatible with checkpoint / "
          "kill / resume — checkpoints persist the per-session records "
          "that streaming aggregation discards");
    }
  }
}

FleetResult run_fleet(const FleetSpec& spec) {
  spec.validate();

  const Catalog catalog(spec.catalog);
  const std::size_t num_titles = catalog.num_titles();
  const std::vector<double> arrivals = generate_arrivals(spec.arrivals);
  if (arrivals.empty()) {
    throw std::invalid_argument(
        "FleetSpec.arrivals: the arrival process yielded zero sessions "
        "(raise the rate, the horizon, or max_sessions)");
  }
  const std::size_t n = arrivals.size();

  // Experiment runs swap the arms into the class slots; everything per
  // class downstream (scheme reuse, folds, the per-class report) is per
  // arm.
  const bool experiment_on = spec.experiment.enabled();
  const std::vector<FleetClientClass>& fleet_classes =
      experiment_on ? spec.experiment.arms : spec.classes;

  // Per-session workload draws, all up front, all counter-based. The
  // experiment assignment lives here too: the per-stratum counters advance
  // in arrival order in this single-threaded loop, so the arm table is
  // byte-identical at any thread count and invariant to title_batch.
  const ZipfSampler zipf(num_titles, spec.catalog.zipf_alpha,
                         detail::derive_seed(spec.seed, 0, kSaltZipf));
  double total_weight = 0.0;
  for (const FleetClientClass& c : fleet_classes) {
    total_weight += c.weight;
  }
  std::vector<std::size_t> trace_bucket;
  std::vector<std::uint64_t> stratum_counter;
  if (experiment_on) {
    trace_bucket =
        trace_rank_buckets(spec.traces, spec.experiment.trace_strata);
    stratum_counter.assign(spec.experiment.trace_strata * 10, 0);
  }
  std::vector<SessionDraw> draws(n);
  std::vector<std::vector<std::size_t>> by_title(num_titles);
  for (std::size_t i = 0; i < n; ++i) {
    SessionDraw& d = draws[i];
    d.title = zipf.sample(i);
    d.trace = std::min(
        spec.traces.size() - 1,
        static_cast<std::size_t>(
            detail::keyed_u01(spec.seed, i, 0, kSaltTrace) *
            static_cast<double>(spec.traces.size())));
    if (detail::keyed_u01(spec.seed, i, 0, kSaltWatchFull) >=
        spec.watch.full_watch_prob) {
      const double u = detail::keyed_u01(spec.seed, i, 0, kSaltWatchTail);
      d.watch_s = spec.watch.min_watch_s -
                  spec.watch.mean_partial_s * std::log(1.0 - u);
    }
    if (experiment_on) {
      // Stratified permuted-block randomization: stratum = trace-class
      // bucket x popularity decile; the arm comes from a seeded block
      // permutation at the stratum's arrival counter.
      d.stratum = static_cast<std::uint32_t>(
          trace_bucket[d.trace] * 10 + catalog.popularity_decile(d.title));
      const std::uint64_t count = stratum_counter[d.stratum]++;
      d.cls = permuted_block_arm(
          spec.experiment.seed, d.stratum, count / fleet_classes.size(),
          static_cast<std::size_t>(count % fleet_classes.size()),
          fleet_classes.size());
    } else {
      const double uc = detail::keyed_u01(spec.seed, i, 0, kSaltClass);
      double acc = 0.0;
      d.cls = fleet_classes.size() - 1;  // guard float residue at 1.0
      for (std::size_t c = 0; c < fleet_classes.size(); ++c) {
        acc += fleet_classes[c].weight / total_weight;
        if (uc < acc) {
          d.cls = c;
          break;
        }
      }
    }
    by_title[d.title].push_back(i);
  }

  // Private telemetry slots, folded in session-id order after the join.
  const bool telemetry_on = spec.trace != nullptr || spec.metrics != nullptr;
  std::vector<std::unique_ptr<obs::MemoryTraceSink>> sinks;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  if (telemetry_on) {
    sinks.resize(n);
    registries.resize(n);
  }

  FleetResult result;
  result.total_sessions = n;
  if (!spec.stream_aggregation) {
    // Streaming aggregation never materializes the per-session table; every
    // other mode fills it in arrival order.
    result.sessions.resize(n);
  }
  result.cache_enabled = spec.use_cache;
  result.experiment_enabled = experiment_on;

  // Pluggable QoE-model suite: one immutable, stateless instance shared
  // read-only across workers; every arm is scored under every definition.
  const metrics::QoeModelSuite qoe_suite =
      experiment_on && spec.experiment.score_qoe_models
          ? metrics::QoeModelSuite::standard()
          : metrics::QoeModelSuite();
  result.qoe_model_names = qoe_suite.names();

  // Per-class report rows, sized and labeled up front: the streaming drain
  // folds into them while the engine is still running.
  result.per_class.resize(fleet_classes.size());
  for (std::size_t c = 0; c < fleet_classes.size(); ++c) {
    result.per_class[c].label = fleet_classes[c].label.empty()
                                    ? fleet_classes[c].make_scheme()->name()
                                    : fleet_classes[c].label;
    result.per_class[c].mean_qoe_scores.assign(qoe_suite.size(), 0.0);
  }

  std::size_t max_tracks = 0;
  for (std::size_t k = 0; k < num_titles; ++k) {
    max_tracks = std::max(max_tracks, catalog.title(k).num_tracks());
  }

  // Shared progress + per-title state. Each row is written only by the
  // worker that owns the title; cross-thread reads happen exclusively at
  // the checkpoint barrier (all writers parked, mutex hand-off).
  std::vector<std::size_t> done_in_title(num_titles, 0);
  std::vector<std::unique_ptr<EdgeCache>> shards(num_titles);
  std::vector<EdgeCacheStats> shard_stats(num_titles);
  std::vector<std::vector<std::uint64_t>> track_hits(
      num_titles, std::vector<std::uint64_t>(max_tracks, 0));
  std::vector<std::vector<std::uint64_t>> track_total(
      num_titles, std::vector<std::uint64_t>(max_tracks, 0));

  // Total capacity splits evenly across per-title shards.
  EdgeCacheConfig shard_cfg = spec.cache;
  if (spec.use_cache) {
    shard_cfg.capacity_bits =
        spec.cache.capacity_bits / static_cast<double>(num_titles);
  }

  // CDN hierarchy: one immutable shared model (tier graph, fault schedule,
  // offered-load profile — all pure functions of the spec and the arrival
  // times) plus per-title mutable state rows, owned like the shards.
  const bool cdn_on = spec.use_cache && spec.cdn.enabled;
  std::optional<CdnModel> cdn_model;
  std::vector<TitleCdnState> cdn_states(cdn_on ? num_titles : 0);
  if (cdn_on) {
    cdn_model.emplace(spec.cdn, shard_cfg, num_titles, arrivals);
  }
  result.cdn_enabled = cdn_on;

  const bool crash_safety_on = !spec.checkpoint_path.empty() ||
                               spec.kill.after_sessions > 0 || spec.resume;
  const std::uint64_t fp =
      crash_safety_on ? fleet_spec_fingerprint(spec) : 0;
  const std::uint64_t exp_fp =
      crash_safety_on ? fleet_experiment_fingerprint(spec) : 0;

  // Resume: restore per-title progress, shard contents, records, and
  // telemetry from the checkpoint, then let the workers run only what is
  // left. An absent file is a fresh run (so one flag drives every
  // iteration of a kill/resume loop); a stale or damaged file is an error.
  std::uint64_t initial_done = 0;
  std::uint64_t initial_events = 0;
  std::vector<std::uint8_t> resumed_completed;
  const bool event_engine = spec.engine == FleetEngine::kEvent;
  if (spec.resume && file_exists(spec.checkpoint_path)) {
    const FleetCheckpoint ck = FleetCheckpoint::load(spec.checkpoint_path);
    // The experiment block is checked before the whole-spec fingerprint so
    // a re-randomized or re-armed experiment gets an error naming the
    // field instead of a generic mismatch: resuming under a different arm
    // table would silently mix assignment schedules.
    if (ck.experiment_fingerprint != exp_fp) {
      throw CheckpointError(
          "checkpoint: FleetSpec.experiment changed since this checkpoint "
          "was written (arms / seed / trace_strata / score_qoe_models) — "
          "resuming under a different arm table is not allowed (stale "
          "checkpoint)");
    }
    if (ck.spec_fingerprint != fp) {
      throw CheckpointError(
          "checkpoint: spec fingerprint mismatch — this checkpoint belongs "
          "to a different workload (stale checkpoint)");
    }
    // Engines cannot resume each other's snapshots: a v3 file locates the
    // resume point as per-title done-prefixes, a v4 file records the event
    // engine's completed-session set (arbitrary under uncoupled
    // interleaving). Checked after the fingerprints so a stale workload is
    // still reported as such first.
    if (event_engine && ck.version < FleetCheckpoint::kEventVersion) {
      throw CheckpointError(
          "checkpoint: written by the per-session stepper (format v" +
          std::to_string(ck.version) +
          ") — FleetSpec.engine: the event engine cannot resume it (finish "
          "under the stepper or remove the stale file)");
    }
    if (!event_engine && ck.version >= FleetCheckpoint::kEventVersion) {
      throw CheckpointError(
          "checkpoint: written by the event engine (format v" +
          std::to_string(ck.version) +
          ") — FleetSpec.engine: the per-session stepper cannot resume it "
          "(finish under the event engine or remove the stale file)");
    }
    if (ck.num_sessions != n || ck.num_titles != num_titles ||
        ck.max_tracks != max_tracks) {
      throw CheckpointError(
          "checkpoint: geometry mismatch (sessions/titles/tracks)");
    }
    initial_events = ck.events_done;
    for (const FleetCheckpoint::TitleState& ts : ck.titles) {
      const std::size_t k = static_cast<std::size_t>(ts.index);
      if (ts.total != by_title[k].size()) {
        throw CheckpointError(
            "checkpoint: per-title session count mismatch");
      }
      done_in_title[k] = static_cast<std::size_t>(ts.done);
      track_hits[k] = ts.track_hits;
      track_total[k] = ts.track_total;
      if (ts.done == ts.total) {
        shard_stats[k] = ts.stats;
      } else if (spec.use_cache) {
        if (!ts.has_shard) {
          throw CheckpointError(
              "checkpoint: in-progress title is missing its shard "
              "snapshot");
        }
        shards[k] = std::make_unique<EdgeCache>(shard_cfg);
        try {
          shards[k]->restore(ts.shard_entries, ts.stats);
        } catch (const std::invalid_argument& e) {
          throw CheckpointError(
              std::string("checkpoint: bad shard snapshot: ") + e.what());
        }
      }
      if (cdn_on) {
        TitleCdnState& cst = cdn_states[k];
        cst.requests = ts.cdn_requests;
        cst.consecutive_sheds = ts.cdn_consecutive_sheds;
        cst.stats = ts.cdn_stats;
        if (ts.done == ts.total) {
          cst.regional_stats = ts.regional_stats;
        } else {
          if (!ts.has_regional) {
            throw CheckpointError(
                "checkpoint: in-progress title is missing its regional "
                "slice snapshot");
          }
          cst.regional = std::make_unique<EdgeCache>(
              cdn_model->regional_shard_config());
          try {
            cst.regional->restore(ts.regional_entries, ts.regional_stats);
          } catch (const std::invalid_argument& e) {
            throw CheckpointError(
                std::string("checkpoint: bad regional slice snapshot: ") +
                e.what());
          }
          for (const auto& [key, fl] : ts.inflight) {
            cst.inflight.emplace(key, fl);
          }
        }
      }
      initial_done += ts.done;
    }
    if (initial_done != ck.sessions_done ||
        ck.sessions.size() != initial_done) {
      throw CheckpointError(
          "checkpoint: session count inconsistent with per-title "
          "progress");
    }
    if (event_engine) {
      // The event engine skips exactly the restored sessions; with
      // uncoupled sessions they need not form per-title prefixes.
      resumed_completed.assign(n, 0);
    }
    for (const FleetCheckpoint::SessionState& ss : ck.sessions) {
      const std::size_t sid = static_cast<std::size_t>(ss.record.session_id);
      if (event_engine) {
        resumed_completed[sid] = 1;
      }
      if (spec.trace != nullptr) {
        if (!ss.has_events) {
          throw CheckpointError(
              "checkpoint: session is missing its event stream");
        }
        sinks[sid] = std::make_unique<obs::MemoryTraceSink>();
        for (const obs::DecisionEvent& ev : ss.events) {
          sinks[sid]->on_decision(ev);
        }
      }
      if (spec.metrics != nullptr) {
        if (!ss.has_metrics) {
          throw CheckpointError(
              "checkpoint: session is missing its metrics registry");
        }
        registries[sid] =
            std::make_unique<obs::MetricsRegistry>(ss.metrics);
      }
      result.sessions[sid] = ss.record;
    }
  }

  const sim::EstimatorFactory default_estimator =
      sim::default_estimator_factory();

  const unsigned threads =
      spec.threads > 0 ? spec.threads
                       : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t title_batch = spec.title_batch;

  // Session-order fold accumulators, shared by both engines: the stepper
  // path feeds them after the workers join; the streaming event engine
  // feeds them while it runs (through the session-id reorder drain).
  detail::SessionFold fold;
  detail::TelemetryFold telemetry_fold{spec.trace, spec.metrics};

  if (spec.engine == FleetEngine::kEvent) {
    // Shared-virtual-time event engine (engine.cpp): same setup, same
    // finalize, different execution. It leaves done_in_title / shards /
    // track rows / records exactly where the worker pool would have.
    detail::EngineContext ectx{spec,
                               catalog,
                               arrivals,
                               fleet_classes,
                               draws,
                               by_title,
                               qoe_suite,
                               shard_cfg,
                               cdn_on ? &*cdn_model : nullptr,
                               default_estimator,
                               experiment_on,
                               telemetry_on,
                               cdn_on,
                               crash_safety_on,
                               max_tracks,
                               threads,
                               fp,
                               exp_fp,
                               initial_done,
                               initial_events,
                               resumed_completed.empty() ? nullptr
                                                         : &resumed_completed,
                               done_in_title,
                               shards,
                               shard_stats,
                               cdn_states,
                               track_hits,
                               track_total,
                               sinks,
                               registries,
                               result,
                               fold,
                               telemetry_fold};
    detail::run_fleet_event(ectx);
  } else {
    // Snapshot closure: runs only at the coordinator barrier, when every
    // worker is parked at a session boundary.
    auto save_checkpoint = [&](std::uint64_t sessions_done_now) {
      FleetCheckpoint ck;
      ck.spec_fingerprint = fp;
      ck.experiment_fingerprint = exp_fp;
      ck.num_sessions = n;
      ck.num_titles = num_titles;
      ck.max_tracks = max_tracks;
      ck.sessions_done = sessions_done_now;
      std::vector<std::size_t> done_sids;
      done_sids.reserve(sessions_done_now);
      for (std::size_t k = 0; k < num_titles; ++k) {
        const std::size_t dk = done_in_title[k];
        if (dk == 0) {
          continue;
        }
        FleetCheckpoint::TitleState ts;
        ts.index = k;
        ts.done = dk;
        ts.total = by_title[k].size();
        ts.track_hits = track_hits[k];
        ts.track_total = track_total[k];
        if (shards[k]) {
          ts.stats = shards[k]->stats();
          if (dk < by_title[k].size()) {
            ts.has_shard = true;
            ts.shard_entries = shards[k]->snapshot();
          }
        } else {
          ts.stats = shard_stats[k];
        }
        if (cdn_on) {
          const TitleCdnState& cst = cdn_states[k];
          ts.cdn_requests = cst.requests;
          ts.cdn_consecutive_sheds = cst.consecutive_sheds;
          ts.cdn_stats = cst.stats;
          if (cst.regional) {
            ts.regional_stats = cst.regional->stats();
            if (dk < by_title[k].size()) {
              ts.has_regional = true;
              ts.regional_entries = cst.regional->snapshot();
              ts.inflight.assign(cst.inflight.begin(), cst.inflight.end());
            }
          } else {
            ts.regional_stats = cst.regional_stats;
          }
        }
        ck.titles.push_back(std::move(ts));
        for (std::size_t idx = 0; idx < dk; ++idx) {
          done_sids.push_back(by_title[k][idx]);
        }
      }
      std::sort(done_sids.begin(), done_sids.end());
      detail::collect_checkpoint_sessions(spec, result, sinks, registries,
                                          done_sids, ck);
      ck.save(spec.checkpoint_path);
    };

    CheckpointCoordinator coord(threads, !spec.checkpoint_path.empty(),
                                spec.checkpoint_every,
                                spec.kill.after_sessions, initial_done,
                                save_checkpoint);

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;
    const auto record_error = [&](std::exception_ptr e) {
      std::lock_guard<std::mutex> g(err_mu);
      if (!first_error) {
        first_error = e;
      }
      failed.store(true);
    };

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        try {
          // Worker-owned reusable actors, one per client class, built
          // lazily and reset by run_session before each use. Reuse is
          // bit-exact (reset() restores construction state; the
          // differential and batched-vs-unbatched fleet tests pin it) and
          // removes the per-session scheme/provider allocations from the
          // hot loop.
          std::vector<std::unique_ptr<abr::AbrScheme>> class_schemes(
              fleet_classes.size());
          std::vector<std::unique_ptr<video::ChunkSizeProvider>>
              class_providers(fleet_classes.size());
          while (true) {
            // Batched claim: one fetch_add hands this worker a contiguous
            // run of titles. Folds are in title/session order, so the
            // batch size cannot influence any result byte.
            const std::size_t base = next.fetch_add(title_batch);
            if (base >= num_titles || failed.load() || coord.stopping()) {
              break;
            }
            const std::size_t limit =
                std::min(num_titles, base + title_batch);
            for (std::size_t k = base; k < limit; ++k) {
              if (failed.load() || coord.stopping()) {
                break;
              }
              const std::vector<std::size_t>& ids = by_title[k];
              // Resumed-complete titles (and unplayed ones) need no work.
              if (ids.empty() || done_in_title[k] >= ids.size()) {
                continue;
              }
              const video::Video& title_video = catalog.title(k);
              const core::ComplexityClassifier classifier(title_video);
              const std::vector<std::size_t>& classes = classifier.classes();
              metrics::QoeConfig qoe = spec.qoe;
              qoe.top_class = classifier.num_classes() - 1;

              // One cache shard per title; its sessions run serially in
              // arrival order, so shard state is schedule-independent. A
              // resumed in-progress title arrives here with its shard
              // already restored from the checkpoint.
              std::unique_ptr<EdgeCachePath> path;
              std::unique_ptr<CdnPath> cdn_path;
              if (spec.use_cache) {
                if (!shards[k]) {
                  shards[k] = std::make_unique<EdgeCache>(shard_cfg);
                }
                if (cdn_on) {
                  // The CDN path routes through the hierarchy; it needs
                  // each session's arrival time (begin_session below) to
                  // evaluate fetch windows and fault schedules in global
                  // fleet time.
                  cdn_path = std::make_unique<CdnPath>(
                      *cdn_model, *shards[k], cdn_states[k],
                      static_cast<std::uint32_t>(k));
                } else {
                  // The path adapter is stateless per session (cache +
                  // title id), so one instance serves every session of the
                  // title.
                  path = std::make_unique<EdgeCachePath>(
                      *shards[k], static_cast<std::uint32_t>(k));
                }
              }

              for (std::size_t idx = done_in_title[k]; idx < ids.size();
                   ++idx) {
                const std::size_t sid = ids[idx];
                const SessionDraw& d = draws[sid];
                const FleetClientClass& cls = fleet_classes[d.cls];
                if (!class_schemes[d.cls]) {
                  class_schemes[d.cls] = cls.make_scheme();
                }
                abr::AbrScheme& scheme = *class_schemes[d.cls];
                const std::unique_ptr<net::BandwidthEstimator> estimator =
                    (cls.make_estimator ? cls.make_estimator
                                        : default_estimator)(
                        spec.traces[d.trace]);
                if (cls.make_size_provider && !class_providers[d.cls]) {
                  class_providers[d.cls] = cls.make_size_provider();
                }
                video::ChunkSizeProvider* sizes =
                    cls.make_size_provider ? class_providers[d.cls].get()
                                           : nullptr;

                sim::SessionConfig sc = spec.session;
                sc.fault = cls.fault;
                sc.retry = cls.retry;
                sc.watch_duration_s = d.watch_s;
                sc.session_id = sid;
                sc.fleet_session = true;
                sc.fleet_arrival_s = arrivals[sid];
                sc.fleet_title = k;
                if (experiment_on) {
                  sc.fleet_arm = static_cast<std::int64_t>(d.cls);
                }
                if (sizes != nullptr) {
                  sc.size_provider = sizes;
                }
                if (cdn_path) {
                  cdn_path->begin_session(arrivals[sid]);
                  sc.download_hook = cdn_path.get();
                } else if (path) {
                  sc.download_hook = path.get();
                }
                if (telemetry_on) {
                  if (spec.trace != nullptr) {
                    sinks[sid] = std::make_unique<obs::MemoryTraceSink>();
                    sc.trace = sinks[sid].get();
                  }
                  if (spec.metrics != nullptr) {
                    registries[sid] =
                        std::make_unique<obs::MetricsRegistry>();
                    sc.metrics = registries[sid].get();
                  }
                }

                const sim::SessionResult sr = sim::run_session(
                    title_video, spec.traces[d.trace], scheme, *estimator,
                    sc);

                result.sessions[sid] = detail::build_session_record(
                    spec, d, sid, arrivals[sid], k, sr, classes, qoe,
                    qoe_suite, experiment_on, track_hits[k], track_total[k]);
                done_in_title[k] = idx + 1;

                if (spec.throttle_us > 0) {
                  // Chaos aid only: stretches wall time so an external
                  // SIGKILL can land mid-run. Nothing downstream reads the
                  // wall clock, so this cannot change any output byte.
                  std::this_thread::sleep_for(
                      std::chrono::microseconds(spec.throttle_us));
                }
                coord.on_session_complete();
                if (failed.load() || coord.stopping()) {
                  break;
                }
              }
              if (done_in_title[k] == ids.size() && shards[k]) {
                shard_stats[k] = shards[k]->stats();
                shards[k].reset();  // bound memory: the shard is folded
                if (cdn_on) {
                  TitleCdnState& cst = cdn_states[k];
                  if (cst.regional) {
                    cst.regional_stats = cst.regional->stats();
                    cst.regional.reset();
                  }
                  cst.inflight.clear();  // fetch windows die with the title
                }
              }
            }
          }
        } catch (...) {
          record_error(std::current_exception());
        }
        coord.worker_exit();
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    if (coord.killed()) {
      throw FleetKilled(coord.sessions_done(), spec.checkpoint_path);
    }
  }

  // Deterministic folds: title order for shard aggregates, session order
  // for everything per-session.
  for (std::size_t k = 0; k < num_titles; ++k) {
    result.cache.merge(shard_stats[k]);
  }
  if (cdn_on) {
    for (std::size_t k = 0; k < num_titles; ++k) {
      result.cdn.merge(cdn_states[k].stats);
      result.regional.merge(cdn_states[k].regional_stats);
    }
    result.upstream_fetch_ratio = result.cdn.upstream_fetch_ratio();
  } else if (spec.use_cache) {
    // Flat cache model: every miss is exactly one upstream fetch.
    result.upstream_fetch_ratio =
        result.cache.lookups == 0
            ? 0.0
            : static_cast<double>(result.cache.lookups - result.cache.hits) /
                  static_cast<double>(result.cache.lookups);
  } else {
    result.upstream_fetch_ratio = 1.0;  // no cache: everything hits origin
  }
  {
    std::vector<std::uint64_t> hits(max_tracks, 0);
    std::vector<std::uint64_t> total(max_tracks, 0);
    std::vector<std::uint64_t> dec_hits(10, 0);
    std::vector<std::uint64_t> dec_total(10, 0);
    for (std::size_t k = 0; k < num_titles; ++k) {
      const std::size_t decile = catalog.popularity_decile(k);
      for (std::size_t tr = 0; tr < max_tracks; ++tr) {
        hits[tr] += track_hits[k][tr];
        total[tr] += track_total[k][tr];
        dec_hits[decile] += track_hits[k][tr];
        dec_total[decile] += track_total[k][tr];
      }
    }
    result.hit_ratio_by_track.assign(max_tracks, 0.0);
    for (std::size_t tr = 0; tr < max_tracks; ++tr) {
      result.hit_ratio_by_track[tr] =
          total[tr] == 0 ? 0.0
                         : static_cast<double>(hits[tr]) /
                               static_cast<double>(total[tr]);
    }
    result.hit_ratio_by_popularity_decile.assign(10, 0.0);
    for (std::size_t dd = 0; dd < 10; ++dd) {
      result.hit_ratio_by_popularity_decile[dd] =
          dec_total[dd] == 0 ? 0.0
                             : static_cast<double>(dec_hits[dd]) /
                                   static_cast<double>(dec_total[dd]);
    }
  }

  // Session-order fold (session id == arrival order). The streaming event
  // engine already fed the fold through its reorder drain in the same
  // order; every other mode folds the materialized records here.
  if (!spec.stream_aggregation) {
    for (const FleetSessionRecord& rec : result.sessions) {
      fold.add(result, rec);
    }
  }
  for (FleetSchemeReport& cr : result.per_class) {
    if (cr.sessions > 0) {
      const double inv = 1.0 / static_cast<double>(cr.sessions);
      cr.mean_all_quality *= inv;
      cr.mean_q4_quality *= inv;
      cr.mean_low_quality_pct *= inv;
      cr.mean_rebuffer_s *= inv;
      cr.mean_startup_delay_s *= inv;
      cr.mean_data_usage_mb *= inv;
      for (double& v : cr.mean_qoe_scores) {
        v *= inv;
      }
    }
  }
  // fold.count >= 1 (a zero-session arrival process throws above), so the
  // empty-input guard of stats::jain_index cannot be hit.
  result.jain_quality =
      detail::SessionFold::jain(fold.count, fold.quality_sum,
                                fold.quality_sum_sq);
  result.jain_bits =
      detail::SessionFold::jain(fold.count, fold.bits_sum, fold.bits_sum_sq);

  // Telemetry fold: session-id order with one monotone global sequence —
  // the same merged-stream discipline as run_experiment. Streaming runs
  // already folded per session as the drain released it.
  if (!spec.stream_aggregation && telemetry_on) {
    for (std::size_t sid = 0; sid < n; ++sid) {
      telemetry_fold.add(sinks[sid].get(), registries[sid].get());
    }
  }
  telemetry_fold.finish();
  if (spec.metrics != nullptr) {
    if (cdn_on) {
      // Fold-time tier counters: deterministic (title-order merge above),
      // so they ride in the registry like any other workload metric.
      const CdnStats& c = result.cdn;
      spec.metrics->counter("cdn_client_requests")
          .add(static_cast<double>(c.client_requests));
      spec.metrics->counter("cdn_edge_hits")
          .add(static_cast<double>(c.edge_hits));
      spec.metrics->counter("cdn_regional_hits")
          .add(static_cast<double>(c.regional_hits));
      spec.metrics->counter("cdn_origin_fetches")
          .add(static_cast<double>(c.origin_fetches));
      spec.metrics->counter("cdn_coalesced")
          .add(static_cast<double>(c.coalesced));
      spec.metrics->counter("cdn_shed").add(static_cast<double>(c.shed));
      spec.metrics->counter("cdn_failovers")
          .add(static_cast<double>(c.failovers));
      spec.metrics->counter("cdn_brownout_fetches")
          .add(static_cast<double>(c.brownout_fetches));
    }
  }
  return result;
}

void FleetResult::write_json(std::ostream& out) const {
  using obs::detail::append_double;
  using obs::detail::append_json_string;
  using obs::detail::append_uint;

  std::string s;
  s.reserve(1024);
  s += "{\"sessions\":";
  append_uint(s, total_sessions != 0 ? total_sessions : sessions.size());
  s += ",\"watchdog_aborted\":";
  append_uint(s, watchdog_aborted_sessions);
  s += ",\"cache\":{\"enabled\":";
  s += cache_enabled ? "true" : "false";
  s += ",\"lookups\":";
  append_uint(s, cache.lookups);
  s += ",\"hits\":";
  append_uint(s, cache.hits);
  s += ",\"hit_ratio\":";
  append_double(s, cache.hit_ratio());
  s += ",\"byte_hit_ratio\":";
  append_double(s, cache.byte_hit_ratio());
  s += ",\"evictions\":";
  append_uint(s, cache.evictions);
  s += ",\"rejected\":";
  append_uint(s, cache.rejected);
  s += ",\"edge_hit_bits\":";
  append_double(s, edge_hit_bits);
  s += ",\"origin_bits\":";
  append_double(s, origin_bits);
  s += ",\"upstream_fetch_ratio\":";
  append_double(s, upstream_fetch_ratio);
  s += "},\"cdn\":{\"enabled\":";
  s += cdn_enabled ? "true" : "false";
  s += ",\"client_requests\":";
  append_uint(s, cdn.client_requests);
  s += ",\"edge_hits\":";
  append_uint(s, cdn.edge_hits);
  s += ",\"regional_hits\":";
  append_uint(s, cdn.regional_hits);
  s += ",\"origin_fetches\":";
  append_uint(s, cdn.origin_fetches);
  s += ",\"coalesced\":";
  append_uint(s, cdn.coalesced);
  s += ",\"shed\":";
  append_uint(s, cdn.shed);
  s += ",\"failovers\":";
  append_uint(s, cdn.failovers);
  s += ",\"brownout_fetches\":";
  append_uint(s, cdn.brownout_fetches);
  s += ",\"shed_wait_s\":";
  append_double(s, cdn.shed_wait_s);
  s += ",\"regional_hit_bits\":";
  append_double(s, cdn.regional_hit_bits);
  s += ",\"origin_fetch_bits\":";
  append_double(s, cdn.origin_fetch_bits);
  s += ",\"upstream_fetch_ratio\":";
  append_double(s, cdn.upstream_fetch_ratio());
  s += ",\"regional_cache\":{\"lookups\":";
  append_uint(s, regional.lookups);
  s += ",\"hits\":";
  append_uint(s, regional.hits);
  s += ",\"hit_ratio\":";
  append_double(s, regional.hit_ratio());
  s += ",\"evictions\":";
  append_uint(s, regional.evictions);
  s += "}},\"hit_ratio_by_track\":[";
  for (std::size_t i = 0; i < hit_ratio_by_track.size(); ++i) {
    if (i > 0) {
      s += ',';
    }
    append_double(s, hit_ratio_by_track[i]);
  }
  s += "],\"hit_ratio_by_popularity_decile\":[";
  for (std::size_t i = 0; i < hit_ratio_by_popularity_decile.size(); ++i) {
    if (i > 0) {
      s += ',';
    }
    append_double(s, hit_ratio_by_popularity_decile[i]);
  }
  s += "],\"fairness\":{\"jain_quality\":";
  append_double(s, jain_quality);
  s += ",\"jain_bits\":";
  append_double(s, jain_bits);
  s += "},\"per_class\":[";
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    const FleetSchemeReport& r = per_class[c];
    if (c > 0) {
      s += ',';
    }
    s += "{\"label\":";
    append_json_string(s, r.label);
    s += ",\"sessions\":";
    append_uint(s, r.sessions);
    s += ",\"mean_quality\":";
    append_double(s, r.mean_all_quality);
    s += ",\"mean_q4_quality\":";
    append_double(s, r.mean_q4_quality);
    s += ",\"low_quality_pct\":";
    append_double(s, r.mean_low_quality_pct);
    s += ",\"mean_rebuffer_s\":";
    append_double(s, r.mean_rebuffer_s);
    s += ",\"mean_startup_s\":";
    append_double(s, r.mean_startup_delay_s);
    s += ",\"mean_data_mb\":";
    append_double(s, r.mean_data_usage_mb);
    if (experiment_enabled) {
      s += ",\"mean_qoe_scores\":[";
      for (std::size_t m = 0; m < r.mean_qoe_scores.size(); ++m) {
        if (m > 0) {
          s += ',';
        }
        append_double(s, r.mean_qoe_scores[m]);
      }
      s += "]";
    }
    s += "}";
  }
  s += "]";
  if (experiment_enabled) {
    s += ",\"experiment\":{\"arms\":";
    append_uint(s, per_class.size());
    s += ",\"qoe_models\":[";
    for (std::size_t m = 0; m < qoe_model_names.size(); ++m) {
      if (m > 0) {
        s += ',';
      }
      append_json_string(s, qoe_model_names[m]);
    }
    s += "]}";
  }
  s += "}";
  out << s << '\n';
}

}  // namespace vbr::fleet
