#include "fleet/catalog.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "fleet/rng.h"

namespace vbr::fleet {

namespace {

/// Genres rotate through the paper's six categories so a catalog mixes
/// complexity profiles the way a real library does.
constexpr video::Genre kGenreCycle[] = {
    video::Genre::kAnimation, video::Genre::kSports, video::Genre::kAction,
    video::Genre::kNature,    video::Genre::kSciFi,  video::Genre::kAnimal,
};

}  // namespace

void CatalogConfig::validate() const {
  if (num_titles == 0) {
    throw std::invalid_argument("CatalogConfig: empty catalog");
  }
  if (!(zipf_alpha >= 0.0) || !std::isfinite(zipf_alpha)) {
    throw std::invalid_argument(
        "CatalogConfig: zipf_alpha must be finite and >= 0");
  }
  if (title_duration_s <= 0.0 || chunk_duration_s <= 0.0 ||
      title_duration_s < chunk_duration_s) {
    throw std::invalid_argument(
        "CatalogConfig: need 0 < chunk_duration_s <= title_duration_s");
  }
  if (cap_factor < 1.0) {
    throw std::invalid_argument("CatalogConfig: cap_factor below 1");
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha, std::uint64_t seed)
    : alpha_(alpha), seed_(seed) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: empty support");
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha)) {
    throw std::invalid_argument(
        "ZipfSampler: alpha must be finite and >= 0");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // kill float residue so sample() can never overflow
}

std::size_t ZipfSampler::sample(std::uint64_t i) const {
  const double u = detail::keyed_u01(seed_, i, 0, 0x5a1f);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) {
    throw std::out_of_range("ZipfSampler::pmf: rank out of range");
  }
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

Catalog::Catalog(const CatalogConfig& cfg) : config_(cfg) {
  cfg.validate();
  titles_.reserve(cfg.num_titles);
  indices_.reserve(cfg.num_titles);
  for (std::size_t k = 0; k < cfg.num_titles; ++k) {
    titles_.push_back(video::make_video(
        "title-" + std::to_string(k),
        kGenreCycle[k % (sizeof(kGenreCycle) / sizeof(kGenreCycle[0]))],
        cfg.codec, cfg.chunk_duration_s, cfg.cap_factor,
        detail::derive_seed(cfg.seed, k, 0x7171e5), cfg.title_duration_s));
    indices_.emplace_back(titles_.back());
  }
}

double Catalog::title_bits(std::size_t k) const {
  const video::SizeIndex& idx = indices_.at(k);
  double bits = 0.0;
  for (std::size_t l = 0; l < idx.num_tracks(); ++l) {
    bits += idx.total_bits(l);
  }
  return bits;
}

std::size_t Catalog::popularity_decile(std::size_t k) const {
  if (k >= titles_.size()) {
    throw std::out_of_range("Catalog::popularity_decile: bad title");
  }
  return k * 10 / titles_.size();
}

}  // namespace vbr::fleet
