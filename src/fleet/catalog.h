// Content catalog + Zipf popularity for fleet-scale workloads.
//
// Real VoD traffic is dominated by a small hot set: request popularity
// across a catalog follows a Zipf-like law (rank-k popularity proportional
// to 1/k^alpha, alpha typically 0.6-1.0 for video CDNs). The catalog builds
// N synthetic titles with deterministic per-title content seeds — title k
// is byte-identical across runs and across catalogs that share a master
// seed — and the ZipfSampler draws which title each arriving session plays.
//
// Title index doubles as popularity rank: title 0 is the most popular.
// Fleet reports bucket cache behaviour by popularity decile on exactly this
// rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "video/dataset.h"
#include "video/size_index.h"
#include "video/video.h"

namespace vbr::fleet {

/// Catalog shape: how many titles and what each title looks like.
struct CatalogConfig {
  std::size_t num_titles = 16;
  /// Zipf popularity exponent; 0 = uniform popularity.
  double zipf_alpha = 0.8;
  /// Master seed. Per-title content seeds are derived from it, so the same
  /// (seed, index) always yields the same title even as num_titles changes.
  std::uint64_t seed = 42;
  double title_duration_s = 120.0;  ///< Per-title length.
  double chunk_duration_s = 2.0;
  double cap_factor = 2.0;          ///< VBR peak-to-average cap.
  video::Codec codec = video::Codec::kH264;

  /// Throws std::invalid_argument on an empty catalog, a negative or
  /// non-finite alpha, or non-positive durations.
  void validate() const;
};

/// Deterministic Zipf(alpha) sampler over ranks 0..n-1. Stateless: draw i
/// is a pure function of (seed, i), so any worker can sample any index
/// without coordination.
class ZipfSampler {
 public:
  /// Throws std::invalid_argument if n == 0 or alpha is negative/non-finite.
  ZipfSampler(std::size_t n, double alpha, std::uint64_t seed);

  /// Rank drawn for counter `i` (same (seed, i) -> same rank, always).
  [[nodiscard]] std::size_t sample(std::uint64_t i) const;

  /// P(rank == k) under the analytic law.
  [[nodiscard]] double pmf(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k); back() == 1.
  double alpha_;
  std::uint64_t seed_;
};

/// N synthetic titles with deterministic per-title seeds, popularity-ranked
/// by index.
class Catalog {
 public:
  /// Builds every title eagerly (validated config). Title k's content seed
  /// is derive_seed(cfg.seed, k), so catalogs are reproducible and titles
  /// are independent of catalog size.
  explicit Catalog(const CatalogConfig& cfg);

  [[nodiscard]] std::size_t num_titles() const { return titles_.size(); }
  [[nodiscard]] const video::Video& title(std::size_t k) const {
    return titles_.at(k);
  }
  [[nodiscard]] const CatalogConfig& config() const { return config_; }

  /// Prefix-sum size index of title k, built once at catalog construction
  /// (range-sum queries for provisioning math and look-ahead bounds).
  [[nodiscard]] const video::SizeIndex& size_index(std::size_t k) const {
    return indices_.at(k);
  }

  /// Total bits of every track of title k (the shard footprint an edge
  /// cache would need to hold the whole title). O(num_tracks) via the
  /// prefix index, not a full table walk.
  [[nodiscard]] double title_bits(std::size_t k) const;

  /// Popularity decile of title k in [0, 9] (0 = hottest tenth).
  [[nodiscard]] std::size_t popularity_decile(std::size_t k) const;

 private:
  CatalogConfig config_;
  std::vector<video::Video> titles_;
  std::vector<video::SizeIndex> indices_;  ///< One per title, same order.
};

}  // namespace vbr::fleet
