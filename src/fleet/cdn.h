// Multi-tier CDN delivery model with overload protection.
//
// Extends the flat edge-cache/origin model into an edge -> regional ->
// origin hierarchy with first-class failure and overload behaviour:
//
//   - request coalescing: an edge miss whose object is already being
//     fetched upstream (its fetch window, in global fleet time, covers the
//     request) joins that fetch instead of issuing a new one — the
//     thundering-herd killer for flash crowds;
//   - fault domains: titles map onto regional nodes (title % nodes); a
//     node outage (seeded, scheduled windows) fails requests over straight
//     to the origin with an extra failover latency, and a downed node
//     neither serves nor absorbs content;
//   - origin brownout: a configured window during which origin fetches pay
//     extra latency, a rate haircut, and a capacity cut that drives load
//     shedding;
//   - admission control / load shedding: when offered load (active
//     sessions, derived from the precomputed arrival times) exceeds the
//     origin's session capacity, requests are shed probabilistically; a
//     shed request is still served, but behind a RetryPolicy-style
//     exponential backoff and a rate penalty the ABR schemes then react to
//     (retry-storm protection: consecutive sheds back off further).
//
// Determinism discipline (the same contract as the rest of src/fleet, and
// unit-tested at 1/2/8 worker threads, under brownouts, and across
// kill/resume): every cross-session coupling is derived from data known
// before any session runs — the arrival-times vector (offered load), the
// spec'd brownout window, and seeded outage schedules — never from runtime
// measurements that could see the thread schedule. Per-title state
// (regional slice, fetch windows, shed counters) is only ever touched by
// the worker that owns the title, and each title's sessions run serially
// in arrival order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fleet/edge_cache.h"
#include "sim/retry.h"

namespace vbr::fleet {

/// Origin brownout: a degraded-service window. duration_s == 0 disables it.
struct CdnBrownoutConfig {
  double start_s = 0.0;     ///< Window start, global fleet time.
  double duration_s = 0.0;  ///< Window length; 0 = no brownout.
  /// Multiplies the origin rate scale (and the upstream backhaul rate)
  /// inside the window, in (0, 1].
  double rate_scale = 0.5;
  double extra_latency_s = 0.2;  ///< Added origin first-byte latency.
  /// Multiplies the origin session capacity inside the window, in (0, 1] —
  /// a brownout both slows fetches and tightens the shedding gate.
  double capacity_scale = 0.5;

  /// Throws std::invalid_argument with field-named messages.
  void validate() const;
};

/// The regional tier: nodes are fault domains; capacity is one pool split
/// into per-title slices (like the edge tier), served LRU.
struct CdnRegionalConfig {
  std::size_t nodes = 2;        ///< Fault domains; title k -> node k % nodes.
  double capacity_bits = 32e9;  ///< Total regional capacity, split per title.
  double hit_latency_s = 0.020; ///< First-byte latency of a regional hit.
  double rate_scale = 0.85;     ///< Path-bandwidth fraction on a regional hit.
  /// Seeded outage schedule: each node suffers this many outage windows,
  /// placed uniformly over the arrival horizon. 0 = no outages.
  std::size_t outages_per_node = 0;
  double outage_duration_s = 30.0;
  /// Extra first-byte latency when a request fails over past a downed node.
  double failover_latency_s = 0.050;

  /// Throws std::invalid_argument with field-named messages.
  void validate() const;
};

/// Admission control at the origin. capacity_sessions == 0 disables
/// shedding entirely.
struct CdnShedConfig {
  /// Concurrent sessions the origin serves comfortably; offered load above
  /// `threshold` of this starts shedding. 0 = shedding off.
  double capacity_sessions = 0.0;
  /// A session arriving within this window of `t` counts as active at `t`.
  double active_session_s = 60.0;
  double threshold = 0.7;      ///< Utilization where shedding begins, > 0.
  double max_shed_prob = 0.8;  ///< Shed probability ceiling, in [0, 1].
  /// Rate haircut a shed-but-served request suffers, in (0, 1].
  double penalty_rate_scale = 0.4;

  /// Throws std::invalid_argument with field-named messages.
  void validate() const;
};

/// The whole hierarchy. `enabled == false` keeps the flat
/// EdgeCache-vs-origin model byte-for-byte untouched.
struct CdnConfig {
  bool enabled = false;
  bool coalesce = true;     ///< Request coalescing on upstream fetches.
  /// Edge->upstream transfer rate used to size coalescing fetch windows
  /// (how long an object stays "in flight" behind the edge).
  double backhaul_bps = 50e6;
  CdnRegionalConfig regional;
  CdnBrownoutConfig brownout;
  CdnShedConfig shed;
  /// Backoff schedule for shed requests (base/factor/max): the k-th
  /// consecutive shed waits min(base * factor^k, max) — the existing
  /// RetryPolicy exponential, so injected overload cannot amplify load.
  sim::RetryPolicy retry;
  std::uint64_t seed = 11;  ///< Outage schedule + shed draws.

  /// Validates every nested config; throws std::invalid_argument with
  /// field-named messages ("CdnConfig.<field>: ...").
  void validate() const;
};

/// Per-tier delivery counters, folded in title order into the fleet report.
struct CdnStats {
  std::uint64_t client_requests = 0;  ///< Hook consultations (per object).
  std::uint64_t edge_hits = 0;
  std::uint64_t regional_hits = 0;
  std::uint64_t origin_fetches = 0;  ///< New upstream fetches to the origin.
  std::uint64_t coalesced = 0;       ///< Requests joined to an in-flight fetch.
  std::uint64_t shed = 0;            ///< Requests shed by admission control.
  std::uint64_t failovers = 0;       ///< Requests routed past a downed node.
  std::uint64_t brownout_fetches = 0;  ///< Origin fetches inside the window.
  double shed_wait_s = 0.0;          ///< Backoff seconds charged to sheds.
  double regional_hit_bits = 0.0;
  double origin_fetch_bits = 0.0;

  void merge(const CdnStats& other);

  /// Upstream fetches (regional + origin) per client request — the
  /// retry-amplification number; 1.0 means every request left the edge.
  [[nodiscard]] double upstream_fetch_ratio() const {
    return client_requests == 0
               ? 0.0
               : static_cast<double>(regional_hits + origin_fetches) /
                     static_cast<double>(client_requests);
  }
};

/// One upstream fetch window, keyed by packed ObjectKey: a later request
/// for the same object whose global time falls inside [start_s, ready_s)
/// coalesces onto it. Windows persist until the title completes (a new
/// fetch of the same object overwrites its window), so serialized
/// session execution still observes every overlap in global time.
struct CdnInflight {
  double start_s = 0.0;
  double ready_s = 0.0;
  std::uint32_t tier = 2;  ///< Tier the original fetch was served from.
};

/// Mutable per-title CDN state. Owned by whichever worker holds the title;
/// snapshotted/restored by the fleet checkpoint.
struct TitleCdnState {
  /// This title's regional slice, created lazily with the title's edge
  /// shard and folded into `regional_stats` when the title completes.
  std::unique_ptr<EdgeCache> regional;
  EdgeCacheStats regional_stats;
  /// Ordered so checkpoint snapshots serialize deterministically.
  std::map<std::uint64_t, CdnInflight> inflight;
  std::uint64_t requests = 0;           ///< Shed-draw counter.
  std::uint64_t consecutive_sheds = 0;  ///< Backoff ladder position.
  /// Set by on_chunk_request, consumed by on_chunk_delivered: the object
  /// traversed a healthy regional node and should be admitted there.
  bool admit_regional = false;
  CdnStats stats;
};

/// Immutable shared run data: the tier graph, the fault schedule, and the
/// offered-load profile. Pure functions of (config, num_titles, arrivals),
/// so every worker can query it without synchronization.
class CdnModel {
 public:
  /// `arrivals` must be the run's full ascending arrival-times vector (the
  /// offered-load profile shedding reads). Throws std::invalid_argument on
  /// an invalid config or unsorted arrivals.
  CdnModel(const CdnConfig& cfg, const EdgeCacheConfig& edge_cfg,
           std::size_t num_titles, std::vector<double> arrivals);

  [[nodiscard]] const CdnConfig& config() const { return cfg_; }
  [[nodiscard]] const EdgeCacheConfig& edge_config() const {
    return edge_cfg_;
  }
  /// Per-title regional slice config (capacity_bits / num_titles).
  [[nodiscard]] const EdgeCacheConfig& regional_shard_config() const {
    return regional_shard_cfg_;
  }

  [[nodiscard]] std::size_t node_of(std::size_t title) const {
    return title % cfg_.regional.nodes;
  }
  [[nodiscard]] bool brownout_at(double t) const;
  [[nodiscard]] bool node_down(std::size_t node, double t) const;
  /// The node's outage windows, ascending by start (tests + reporting).
  [[nodiscard]] const std::vector<std::pair<double, double>>& outages(
      std::size_t node) const {
    return outages_[node];
  }

  /// Active sessions at `t` divided by the (brownout-scaled) origin
  /// capacity; 0 when shedding is off.
  [[nodiscard]] double origin_utilization(double t) const;
  /// min(max_shed_prob, (u - threshold) / u) above the threshold, else 0.
  [[nodiscard]] double shed_probability(double t) const;

 private:
  CdnConfig cfg_;
  EdgeCacheConfig edge_cfg_;
  EdgeCacheConfig regional_shard_cfg_;
  std::vector<double> arrivals_;
  std::vector<std::vector<std::pair<double, double>>> outages_;
};

/// Deterministic shed backoff: min(base * factor^consecutive, max) off the
/// policy's exponential schedule (no jitter — the draw that shed the
/// request already carries the randomness).
[[nodiscard]] double shed_backoff_s(const sim::RetryPolicy& policy,
                                    std::uint64_t consecutive_sheds);

/// sim::DownloadPathHook adapter routing one title's fetches through the
/// hierarchy. One instance serves every session of the title (they run
/// serially); call begin_session() with each session's arrival time so
/// fetch windows, fault schedules, and offered load are all evaluated in
/// global fleet time.
class CdnPath final : public sim::DownloadPathHook {
 public:
  /// Creates `state.regional` (this title's regional slice) when absent, so
  /// a fresh title and a checkpoint-restored one wire up identically.
  CdnPath(const CdnModel& model, EdgeCache& edge, TitleCdnState& state,
          std::uint32_t title);

  void begin_session(double arrival_s) { arrival_s_ = arrival_s; }

  [[nodiscard]] sim::FetchPlan on_chunk_request(const video::Video& video,
                                                std::size_t track,
                                                std::size_t index,
                                                double size_bits,
                                                double now_s) override;
  void on_chunk_delivered(const video::Video& video, std::size_t track,
                          std::size_t index, double size_bits,
                          double now_s) override;

 private:
  const CdnModel* model_;
  EdgeCache* edge_;
  TitleCdnState* state_;
  std::uint32_t title_;
  double arrival_s_ = 0.0;
};

}  // namespace vbr::fleet
