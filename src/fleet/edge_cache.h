// Edge-cache / origin delivery model for fleet workloads.
//
// The paper's deployment context (a large content provider) serves chunks
// through CDN edge caches; a chunk present at the edge arrives with low
// first-byte latency at full path bandwidth, while a miss is fetched from
// the origin — extra latency, and a throughput haircut for the origin leg.
// VBR's defining property makes the cache interesting: chunk sizes vary by
// multiples within a track, so byte-based LRU eviction and size-aware
// admission interact with exactly the variability the paper characterizes.
//
// EdgeCache is a byte-capacity LRU over (title, track, chunk) objects with
// size-aware admission: objects above `max_object_fraction` of capacity are
// never admitted (one oversized object must not flush the whole shard). The
// byte capacity invariant — used_bits() <= capacity at all times — holds
// across any operation sequence and is unit-tested.
//
// Thread-safety: none, by design. run_fleet shards one cache per title and
// serializes each shard's sessions in arrival order (the determinism
// discipline documented in DESIGN.md §9), so shards never see concurrent
// access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/session.h"
#include "video/video.h"

namespace vbr::fleet {

struct EdgeCacheConfig {
  /// Shard byte capacity. run_fleet treats a zero *total* capacity as
  /// "cache model off" (no hook attached at all); EdgeCache itself requires
  /// a positive capacity.
  double capacity_bits = 8e9;
  double hit_latency_s = 0.005;   ///< First-byte latency served from edge.
  double miss_latency_s = 0.080;  ///< Edge->origin round trip on a miss.
  /// Fraction of the client's path bandwidth sustained while the chunk
  /// streams through from the origin (the origin leg is the bottleneck).
  double origin_rate_scale = 0.7;
  /// Size-aware admission: objects larger than this fraction of capacity
  /// are served but never cached.
  double max_object_fraction = 0.5;

  /// Throws std::invalid_argument on non-positive capacity/latency bounds,
  /// origin_rate_scale outside (0, 1], or max_object_fraction outside
  /// (0, 1].
  void validate() const;
};

/// One cached object: a specific encoded chunk of a specific title.
struct ObjectKey {
  std::uint32_t title = 0;
  std::uint32_t track = 0;
  std::uint64_t chunk = 0;
};

struct EdgeCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  double hit_bits = 0.0;     ///< Bytes of lookups answered at the edge.
  double miss_bits = 0.0;    ///< Bytes of lookups sent to the origin.
  std::uint64_t evictions = 0;
  double evicted_bits = 0.0;
  std::uint64_t rejected = 0;  ///< Admissions refused by the size gate.

  [[nodiscard]] double hit_ratio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double byte_hit_ratio() const {
    const double total = hit_bits + miss_bits;
    return total <= 0.0 ? 0.0 : hit_bits / total;
  }

  void merge(const EdgeCacheStats& other);
};

/// One cached object as serialized into a fleet checkpoint: the unpacked
/// key plus its size. Snapshots are ordered most-recently-used first.
struct EdgeCacheEntrySnapshot {
  std::uint32_t title = 0;
  std::uint32_t track = 0;
  std::uint64_t chunk = 0;
  double bits = 0.0;
};

/// Byte-capacity LRU with size-aware admission. Deterministic: behaviour is
/// a pure function of the operation sequence.
class EdgeCache {
 public:
  /// Throws std::invalid_argument on invalid config (including
  /// capacity_bits <= 0 — a zero-capacity shard is a fleet-level "off").
  explicit EdgeCache(const EdgeCacheConfig& cfg);

  /// True (and the entry is touched most-recently-used) if the object is
  /// cached. Records the lookup and attributes `size_bits` to hit or miss
  /// bytes.
  bool lookup(const ObjectKey& key, double size_bits);

  /// Inserts the object after an origin fetch, evicting least-recently-used
  /// entries until it fits. Oversized objects (size gate) are counted as
  /// rejected and not admitted. Re-admitting a cached object refreshes its
  /// recency. `size_bits` must be positive.
  void admit(const ObjectKey& key, double size_bits);

  [[nodiscard]] bool contains(const ObjectKey& key) const;

  /// Full cache contents, most-recently-used first (checkpoint capture).
  [[nodiscard]] std::vector<EdgeCacheEntrySnapshot> snapshot() const;

  /// Rebuilds contents and stats from a snapshot (checkpoint resume). The
  /// cache must be freshly constructed and empty; entries must fit within
  /// capacity. Throws std::invalid_argument otherwise.
  void restore(const std::vector<EdgeCacheEntrySnapshot>& entries,
               const EdgeCacheStats& stats);

  /// Packs a key into the 64-bit form used internally and by the CDN
  /// layer's coalescing tables (20 bits title / 8 track / 36 chunk).
  /// Throws std::invalid_argument on out-of-range components.
  static std::uint64_t pack(const ObjectKey& key);

  [[nodiscard]] double used_bits() const { return used_bits_; }
  [[nodiscard]] std::size_t num_objects() const { return index_.size(); }
  [[nodiscard]] const EdgeCacheConfig& config() const { return config_; }
  [[nodiscard]] const EdgeCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t key;
    double bits;
  };

  void evict_lru();

  EdgeCacheConfig config_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  double used_bits_ = 0.0;
  EdgeCacheStats stats_;
};

/// sim::DownloadPathHook adapter: routes one session's chunk fetches
/// through an EdgeCache shard. Hits get `hit_latency_s` at full bandwidth;
/// misses get `miss_latency_s` plus the origin-rate haircut and are
/// admitted once the chunk lands.
class EdgeCachePath final : public sim::DownloadPathHook {
 public:
  EdgeCachePath(EdgeCache& cache, std::uint32_t title)
      : cache_(&cache), title_(title) {}

  [[nodiscard]] sim::FetchPlan on_chunk_request(const video::Video& video,
                                                std::size_t track,
                                                std::size_t index,
                                                double size_bits,
                                                double now_s) override;
  void on_chunk_delivered(const video::Video& video, std::size_t track,
                          std::size_t index, double size_bits,
                          double now_s) override;

 private:
  EdgeCache* cache_;
  std::uint32_t title_;
};

}  // namespace vbr::fleet
