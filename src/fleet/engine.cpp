#include "fleet/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/complexity_classifier.h"
#include "fleet/checkpoint.h"
#include "obs/fold.h"
#include "sim/stepper.h"

namespace vbr::fleet::detail {

namespace {

/// Events popped per batch. Deliberately a fixed constant — NOT derived
/// from the thread count — so checkpoint and kill barriers (which fire
/// between batches) land on the same event boundaries at any parallelism.
constexpr std::size_t kEventBatch = 256;

/// One scheduled chunk decision: virtual time (global fleet clock =
/// arrival_s + session-local clock) plus the session id as the
/// deterministic tie-break.
struct Event {
  double vt = 0.0;
  std::uint64_t sid = 0;
};

/// Min-heap ordering for std::priority_queue (which pops its "largest").
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.vt != b.vt) {
      return a.vt > b.vt;
    }
    return a.sid > b.sid;
  }
};

/// Boundary snapshot of a chained title's shared delivery state, captured
/// at each session completion while crash safety is armed. The live shard
/// mid-batch can reflect a half-run in-flight session, so checkpoints
/// serialize the last boundary instead; the in-flight session is simply
/// re-simulated on resume. Track rows, done counts, records, and telemetry
/// slots need no snapshot — they only mutate at completion, in the serial
/// post-phase, so they are boundary-consistent by construction.
struct TitleBoundary {
  EdgeCacheStats shard_stats;
  std::vector<EdgeCacheEntrySnapshot> shard_entries;
  std::uint64_t cdn_requests = 0;
  std::uint64_t cdn_consecutive_sheds = 0;
  CdnStats cdn_stats;
  EdgeCacheStats regional_stats;
  std::vector<EdgeCacheEntrySnapshot> regional_entries;
  std::vector<std::pair<std::uint64_t, CdnInflight>> inflight;
};

/// One completed session queued in the streaming reorder drain: the record
/// plus its private telemetry, all of which are dropped once folded.
struct DrainItem {
  FleetSessionRecord record;
  std::unique_ptr<obs::MemoryTraceSink> sink;
  std::unique_ptr<obs::MetricsRegistry> registry;
};

/// Reusable fork-join pool for the data-parallel step phase: run(fn)
/// executes fn on every helper thread plus the caller and returns when all
/// are done. The generation counter + mutex hand-off gives the serial
/// post-phase a happens-before edge over every helper's writes.
class StepPool {
 public:
  explicit StepPool(unsigned helpers) {
    threads_.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  StepPool(const StepPool&) = delete;
  StepPool& operator=(const StepPool&) = delete;

  ~StepPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      ++gen_;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  void run(const std::function<void()>& fn) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = &fn;
      busy_ = static_cast<unsigned>(threads_.size());
      ++gen_;
    }
    cv_start_.notify_all();
    fn();  // the caller is a worker too
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return busy_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void()>* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_start_.wait(lk, [&] { return shutdown_ || gen_ != seen; });
        if (shutdown_) {
          return;
        }
        seen = gen_;
        job = job_;
      }
      if (job != nullptr) {
        (*job)();
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--busy_ == 0) {
          cv_done_.notify_one();
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void()>* job_ = nullptr;
  unsigned busy_ = 0;
  std::uint64_t gen_ = 0;
  bool shutdown_ = false;
};

/// The engine proper. Columnar per-session lanes + one global event heap;
/// see engine.h for the architecture contract.
class EventEngine {
 public:
  explicit EventEngine(EngineContext& ctx)
      : ctx_(ctx),
        n_(ctx.arrivals.size()),
        num_titles_(ctx.catalog.num_titles()),
        chained_(ctx.spec.use_cache),
        streaming_(ctx.spec.stream_aggregation),
        stepper_(n_),
        scheme_(n_),
        estimator_(n_),
        provider_(n_),
        completed_(n_, 0),
        title_rt_(num_titles_),
        edge_path_(chained_ ? num_titles_ : 0),
        cdn_path_(chained_ && ctx.cdn_on ? num_titles_ : 0),
        boundary_(ctx.crash_safety_on && chained_ ? num_titles_ : 0),
        events_done_(ctx.initial_events),
        sessions_done_(ctx.initial_done) {
    if (ctx_.resumed_completed != nullptr) {
      completed_ = *ctx_.resumed_completed;
    }
    const bool have_path = !ctx_.spec.checkpoint_path.empty();
    if (have_path && ctx_.spec.checkpoint_every > 0) {
      next_ckpt_at_ =
          (events_done_ / ctx_.spec.checkpoint_every + 1) *
          ctx_.spec.checkpoint_every;
    }
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(ctx_.threads, kEventBatch));
    if (workers > 1) {
      pool_ = std::make_unique<StepPool>(workers - 1);
    }
    batch_.reserve(kEventBatch);
    more_.resize(kEventBatch, 0);
    errors_.resize(kEventBatch);
  }

  void run() {
    admit_initial();
    seed_resumed_boundaries();
    const bool have_path = !ctx_.spec.checkpoint_path.empty();
    const std::uint64_t kill_after = ctx_.spec.kill.after_sessions;

    while (!heap_.empty()) {
      max_heap_ = std::max<std::uint64_t>(max_heap_, heap_.size());
      // Pop one deterministic batch of distinct sessions (at most one
      // in-flight event per session exists at a time, so distinctness is
      // structural).
      batch_.clear();
      while (!heap_.empty() && batch_.size() < kEventBatch) {
        batch_.push_back(heap_.top());
        heap_.pop();
      }
      // Uncoupled mode: the batch floor (min virtual time of any
      // unprocessed event) never moves backwards — every follow-up lands
      // at or after its parent. Chained admissions may rewind it (a
      // successor arrives at its own, earlier arrival time), so the check
      // is scoped to the uncoupled timeline.
      if (!chained_) {
        if (batch_.front().vt < vt_floor_) {
          throw std::logic_error(
              "fleet event engine: global virtual time moved backwards");
        }
        vt_floor_ = batch_.front().vt;
      }

      step_batch();

      // Serial post-phase, in event order: first error wins, then
      // follow-ups / completions / folds.
      for (std::size_t j = 0; j < batch_.size(); ++j) {
        if (errors_[j]) {
          std::rethrow_exception(errors_[j]);
        }
      }
      peak_in_flight_ =
          std::max(peak_in_flight_, in_flight_.load(std::memory_order_relaxed));
      for (std::size_t j = 0; j < batch_.size(); ++j) {
        const std::size_t sid = static_cast<std::size_t>(batch_[j].sid);
        ++events_done_;
        if (more_[j] != 0) {
          heap_.push(
              {ctx_.arrivals[sid] + stepper_[sid]->now_s(), batch_[j].sid});
        } else {
          complete(sid);
        }
      }

      // Barriers fire between batches, at event-count boundaries that a
      // fixed kEventBatch keeps identical across thread counts.
      if (kill_after > 0 && sessions_done_ >= kill_after) {
        if (have_path) {
          save_checkpoint();
        }
        throw FleetKilled(sessions_done_, ctx_.spec.checkpoint_path);
      }
      if (have_path && ctx_.spec.checkpoint_every > 0 &&
          events_done_ >= next_ckpt_at_) {
        save_checkpoint();
        next_ckpt_at_ = (events_done_ / ctx_.spec.checkpoint_every + 1) *
                        ctx_.spec.checkpoint_every;
      }
    }

    if (streaming_ && drain_.pending() != 0) {
      throw std::logic_error(
          "fleet event engine: streaming drain did not empty");
    }
    FleetEngineStats& es = ctx_.result.engine_stats;
    es.events_processed = events_done_;
    es.peak_in_flight = peak_in_flight_;
    es.max_heap_size = max_heap_;
    es.peak_resident_records = drain_.peak_pending();
  }

 private:
  void admit_initial() {
    if (chained_) {
      // Coupled titles run serially in arrival order: admit only each
      // title's first unfinished session; completions chain the rest.
      for (std::size_t k = 0; k < num_titles_; ++k) {
        const std::vector<std::size_t>& ids = ctx_.by_title[k];
        if (!ids.empty() && ctx_.done_in_title[k] < ids.size()) {
          const std::size_t sid = ids[ctx_.done_in_title[k]];
          heap_.push({ctx_.arrivals[sid], static_cast<std::uint64_t>(sid)});
        }
      }
    } else {
      // Uncoupled sessions share nothing: every remaining arrival goes on
      // the timeline up front — the 100k-concurrency mode.
      for (std::size_t sid = 0; sid < n_; ++sid) {
        if (completed_[sid] == 0) {
          heap_.push({ctx_.arrivals[sid], static_cast<std::uint64_t>(sid)});
        }
      }
    }
  }

  /// A resumed in-progress chained title restarts exactly at a session
  /// boundary, so its restored live state IS its first boundary snapshot —
  /// captured here in case a checkpoint fires before its next completion.
  void seed_resumed_boundaries() {
    if (boundary_.empty()) {
      return;
    }
    for (std::size_t k = 0; k < num_titles_; ++k) {
      const std::size_t dk = ctx_.done_in_title[k];
      if (dk > 0 && dk < ctx_.by_title[k].size()) {
        capture_boundary(k);
      }
    }
  }

  /// Builds the per-session actors and the resumable stepper. Runs inside
  /// the parallel step phase: it touches only this session's lanes, the
  /// immutable shared setup, and (chained mode) this title's delivery
  /// state — safe because a batch holds at most one session per title.
  void open_session(std::size_t sid) {
    const SessionDraw& d = ctx_.draws[sid];
    const std::size_t k = d.title;
    const FleetClientClass& cls = ctx_.fleet_classes[d.cls];
    // Columnar lanes get fresh actors per session; the stepper's reset()
    // contract makes fresh and pooled instances byte-identical, so this
    // matches the stepper engine's per-worker pooling.
    scheme_[sid] = cls.make_scheme();
    estimator_[sid] = (cls.make_estimator ? cls.make_estimator
                                          : ctx_.default_estimator)(
        ctx_.spec.traces[d.trace]);
    if (cls.make_size_provider) {
      provider_[sid] = cls.make_size_provider();
    }

    sim::SessionConfig sc = ctx_.spec.session;
    sc.fault = cls.fault;
    sc.retry = cls.retry;
    sc.watch_duration_s = d.watch_s;
    sc.session_id = sid;
    sc.fleet_session = true;
    sc.fleet_arrival_s = ctx_.arrivals[sid];
    sc.fleet_title = k;
    if (ctx_.experiment_on) {
      sc.fleet_arm = static_cast<std::int64_t>(d.cls);
    }
    if (provider_[sid]) {
      sc.size_provider = provider_[sid].get();
    }
    if (chained_) {
      if (!ctx_.shards[k]) {
        ctx_.shards[k] = std::make_unique<EdgeCache>(ctx_.shard_cfg);
      }
      if (ctx_.cdn_on) {
        if (!cdn_path_[k]) {
          cdn_path_[k] = std::make_unique<CdnPath>(
              *ctx_.cdn_model, *ctx_.shards[k], ctx_.cdn_states[k],
              static_cast<std::uint32_t>(k));
        }
        cdn_path_[k]->begin_session(ctx_.arrivals[sid]);
        sc.download_hook = cdn_path_[k].get();
      } else {
        if (!edge_path_[k]) {
          edge_path_[k] = std::make_unique<EdgeCachePath>(
              *ctx_.shards[k], static_cast<std::uint32_t>(k));
        }
        sc.download_hook = edge_path_[k].get();
      }
    }
    if (ctx_.telemetry_on) {
      if (ctx_.spec.trace != nullptr) {
        ctx_.sinks[sid] = std::make_unique<obs::MemoryTraceSink>();
        sc.trace = ctx_.sinks[sid].get();
      }
      if (ctx_.spec.metrics != nullptr) {
        ctx_.registries[sid] = std::make_unique<obs::MetricsRegistry>();
        sc.metrics = ctx_.registries[sid].get();
      }
    }
    stepper_[sid] = std::make_unique<sim::SessionStepper>(
        ctx_.catalog.title(k), ctx_.spec.traces[d.trace], *scheme_[sid],
        *estimator_[sid], sc);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }

  void step_one(std::size_t j) {
    const std::size_t sid = static_cast<std::size_t>(batch_[j].sid);
    errors_[j] = nullptr;
    try {
      if (!stepper_[sid]) {
        open_session(sid);
      }
      more_[j] = stepper_[sid]->step() ? 1 : 0;
    } catch (...) {
      errors_[j] = std::current_exception();
      more_[j] = 0;
    }
  }

  /// Data-parallel step phase: batch entries are distinct sessions with
  /// disjoint mutable state, claimed off an atomic cursor. Results and
  /// errors land in per-slot arrays consumed by the serial post-phase.
  /// Without a pool the cursor and its per-slot atomic traffic are skipped
  /// outright — single-threaded throughput is a benchmarked floor.
  void step_batch() {
    if (!pool_) {
      for (std::size_t j = 0; j < batch_.size(); ++j) {
        step_one(j);
      }
      return;
    }
    std::atomic<std::size_t> cursor{0};
    pool_->run([&] {
      while (true) {
        const std::size_t j = cursor.fetch_add(1, std::memory_order_relaxed);
        if (j >= batch_.size()) {
          break;
        }
        step_one(j);
      }
    });
  }

  /// Serial post-phase completion: record build + fold, lane teardown,
  /// chained follow-up admission, title-completion folds, boundary capture.
  void complete(std::size_t sid) {
    const SessionDraw& d = ctx_.draws[sid];
    const std::size_t k = d.title;
    TitleRuntime& tr = title_rt_[k];
    if (!tr.ready) {
      const core::ComplexityClassifier classifier(ctx_.catalog.title(k));
      tr.classes = classifier.classes();
      tr.qoe = ctx_.spec.qoe;
      tr.qoe.top_class = classifier.num_classes() - 1;
      tr.ready = true;
    }
    const sim::SessionResult sr = stepper_[sid]->finish();
    FleetSessionRecord rec = build_session_record(
        ctx_.spec, d, sid, ctx_.arrivals[sid], k, sr, tr.classes, tr.qoe,
        ctx_.qoe_suite, ctx_.experiment_on, ctx_.track_hits[k],
        ctx_.track_total[k]);

    stepper_[sid].reset();
    scheme_[sid].reset();
    estimator_[sid].reset();
    provider_[sid].reset();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    completed_[sid] = 1;
    ++sessions_done_;
    ++ctx_.done_in_title[k];

    if (streaming_) {
      // Streaming aggregation: the session-id reorder drain releases
      // completions in exactly the fold order the materializing path uses,
      // then drops them — memory stays O(in-flight).
      DrainItem item;
      item.record = std::move(rec);
      if (ctx_.telemetry_on) {
        item.sink = std::move(ctx_.sinks[sid]);
        item.registry = std::move(ctx_.registries[sid]);
      }
      drain_.put(sid, std::move(item));
      while (auto ready = drain_.pop()) {
        ctx_.fold.add(ctx_.result, ready->record);
        ctx_.telemetry_fold.add(ready->sink.get(), ready->registry.get());
      }
    } else {
      ctx_.result.sessions[sid] = std::move(rec);
    }

    if (chained_) {
      const std::vector<std::size_t>& ids = ctx_.by_title[k];
      const std::size_t done = ctx_.done_in_title[k];
      if (done < ids.size()) {
        // Chain the next session of this coupled title at its own arrival
        // time (which may precede the current batch floor — the title's
        // serial order is what matters, not the global clock).
        const std::size_t nsid = ids[done];
        heap_.push({ctx_.arrivals[nsid], static_cast<std::uint64_t>(nsid)});
        if (!boundary_.empty()) {
          capture_boundary(k);
        }
      } else if (ctx_.shards[k]) {
        // Title complete: fold shard + CDN state exactly like the stepper.
        ctx_.shard_stats[k] = ctx_.shards[k]->stats();
        ctx_.shards[k].reset();  // bound memory: the shard is folded
        edge_path_.at(k).reset();
        if (ctx_.cdn_on) {
          cdn_path_[k].reset();
          TitleCdnState& cst = ctx_.cdn_states[k];
          if (cst.regional) {
            cst.regional_stats = cst.regional->stats();
            cst.regional.reset();
          }
          cst.inflight.clear();  // fetch windows die with the title
        }
      }
    }

    if (ctx_.spec.throttle_us > 0) {
      // Chaos aid only (see FleetSpec::throttle_us): wall time, no output.
      std::this_thread::sleep_for(
          std::chrono::microseconds(ctx_.spec.throttle_us));
    }
  }

  void capture_boundary(std::size_t k) {
    TitleBoundary& b = boundary_[k];
    b.shard_stats = ctx_.shards[k]->stats();
    b.shard_entries = ctx_.shards[k]->snapshot();
    if (ctx_.cdn_on) {
      const TitleCdnState& cst = ctx_.cdn_states[k];
      b.cdn_requests = cst.requests;
      b.cdn_consecutive_sheds = cst.consecutive_sheds;
      b.cdn_stats = cst.stats;
      if (cst.regional) {
        b.regional_stats = cst.regional->stats();
        b.regional_entries = cst.regional->snapshot();
      }
      b.inflight.assign(cst.inflight.begin(), cst.inflight.end());
    }
  }

  /// "VBRFLEETCKPT 4" snapshot between batches. Completed titles and
  /// track/record state are live-consistent (mutated only at completion);
  /// in-progress chained titles serialize their last boundary snapshot.
  void save_checkpoint() {
    FleetCheckpoint ck;
    ck.version = FleetCheckpoint::kEventVersion;
    ck.events_done = events_done_;
    ck.spec_fingerprint = ctx_.fp;
    ck.experiment_fingerprint = ctx_.exp_fp;
    ck.num_sessions = n_;
    ck.num_titles = num_titles_;
    ck.max_tracks = ctx_.max_tracks;
    ck.sessions_done = sessions_done_;
    for (std::size_t k = 0; k < num_titles_; ++k) {
      const std::size_t dk = ctx_.done_in_title[k];
      if (dk == 0) {
        continue;
      }
      FleetCheckpoint::TitleState ts;
      ts.index = k;
      ts.done = dk;
      ts.total = ctx_.by_title[k].size();
      ts.track_hits = ctx_.track_hits[k];
      ts.track_total = ctx_.track_total[k];
      const bool in_progress = dk < ctx_.by_title[k].size();
      if (chained_ && in_progress) {
        const TitleBoundary& b = boundary_.at(k);
        ts.stats = b.shard_stats;
        ts.has_shard = true;
        ts.shard_entries = b.shard_entries;
        if (ctx_.cdn_on) {
          ts.cdn_requests = b.cdn_requests;
          ts.cdn_consecutive_sheds = b.cdn_consecutive_sheds;
          ts.cdn_stats = b.cdn_stats;
          ts.has_regional = true;
          ts.regional_stats = b.regional_stats;
          ts.regional_entries = b.regional_entries;
          ts.inflight = b.inflight;
        }
      } else {
        // Completed title (stats folded at completion) or uncoupled run
        // (no shard at all — ts.stats stays zero, matching the stepper).
        ts.stats = ctx_.shard_stats[k];
        if (ctx_.cdn_on) {
          const TitleCdnState& cst = ctx_.cdn_states[k];
          ts.cdn_requests = cst.requests;
          ts.cdn_consecutive_sheds = cst.consecutive_sheds;
          ts.cdn_stats = cst.stats;
          ts.regional_stats = cst.regional_stats;
        }
      }
      ck.titles.push_back(std::move(ts));
    }
    // The completed bitmap is already in ascending session-id order; with
    // uncoupled interleaving the done set need not be per-title prefixes,
    // which is exactly why the stepper cannot resume a v4 file.
    std::vector<std::size_t> done_sids;
    done_sids.reserve(sessions_done_);
    for (std::size_t sid = 0; sid < n_; ++sid) {
      if (completed_[sid] != 0) {
        done_sids.push_back(sid);
      }
    }
    collect_checkpoint_sessions(ctx_.spec, ctx_.result, ctx_.sinks,
                                ctx_.registries, done_sids, ck);
    ck.save(ctx_.spec.checkpoint_path);
  }

  /// Per-title immutable data built lazily at first completion (serial
  /// post-phase): complexity classes + the title-adjusted QoE config.
  struct TitleRuntime {
    bool ready = false;
    std::vector<std::size_t> classes;
    metrics::QoeConfig qoe;
  };

  EngineContext& ctx_;
  const std::size_t n_;
  const std::size_t num_titles_;
  const bool chained_;
  const bool streaming_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::vector<Event> batch_;
  std::vector<std::uint8_t> more_;
  std::vector<std::exception_ptr> errors_;

  // Columnar (struct-of-arrays) per-session lanes, indexed by session id;
  // entries live only while the session is in flight.
  std::vector<std::unique_ptr<sim::SessionStepper>> stepper_;
  std::vector<std::unique_ptr<abr::AbrScheme>> scheme_;
  std::vector<std::unique_ptr<net::BandwidthEstimator>> estimator_;
  std::vector<std::unique_ptr<video::ChunkSizeProvider>> provider_;
  std::vector<std::uint8_t> completed_;

  std::vector<TitleRuntime> title_rt_;
  std::vector<std::unique_ptr<EdgeCachePath>> edge_path_;  ///< Per title.
  std::vector<std::unique_ptr<CdnPath>> cdn_path_;         ///< Per title.
  std::vector<TitleBoundary> boundary_;  ///< Crash-safe chained runs only.

  obs::OrderedDrain<DrainItem> drain_;
  std::unique_ptr<StepPool> pool_;

  std::uint64_t events_done_;
  std::uint64_t sessions_done_;
  std::uint64_t next_ckpt_at_ = 0;
  std::atomic<std::uint64_t> in_flight_{0};
  std::uint64_t peak_in_flight_ = 0;
  std::uint64_t max_heap_ = 0;
  double vt_floor_ = -std::numeric_limits<double>::infinity();
};

}  // namespace

void run_fleet_event(EngineContext& ctx) {
  EventEngine engine(ctx);
  engine.run();
}

}  // namespace vbr::fleet::detail
