// Shared-virtual-time event-driven fleet engine.
//
// The per-session stepper (fleet.cpp) runs each session to completion on
// whichever worker claimed its title, so at most `threads` sessions are
// ever in flight and per-title work is serial end to end. This engine
// inverts the loop: each session's NEXT chunk-decision is an event on one
// global virtual timeline — a binary min-heap keyed by
// (virtual_time = arrival_s + session-local clock, session_id), the id
// breaking virtual-time ties deterministically — so 100k+ sessions can be
// in flight concurrently with columnar (struct-of-arrays) per-session
// state: one lane each for the resumable SessionStepper (sim/stepper.h),
// scheme, estimator, and size provider, indexed by session id and freed at
// completion.
//
// Determinism at any thread count. Events are popped in fixed-size batches
// (kEventBatch, independent of the thread count so checkpoint cuts land on
// the same event boundaries regardless of parallelism). A batch holds
// distinct sessions, whose steppers touch disjoint state, so the step
// phase runs data-parallel across a small worker pool; everything that
// orders shared state — pushing follow-up events, completing sessions,
// folding records, checkpoint and kill barriers — happens in a serial
// post-phase in event order. No fold ever sees worker order.
//
// Coupled titles. With the edge cache on, a title's sessions share
// mutable delivery state (shard, CDN fetch windows, shed ladder) and the
// stepper semantics are "serial in arrival order per title". The engine
// preserves that byte for byte by CHAINING such titles: only the first
// unfinished session of a title is admitted; its completion schedules the
// next one at that session's own arrival time. Uncoupled workloads
// (use_cache = false) admit every arrival up front and interleave freely —
// that is the 100k-concurrency mode, where global virtual time is also
// monotone (chained admissions may legitimately rewind it, since a
// successor's arrival can precede the global clock).
//
// Crash safety. Event-engine checkpoints are "VBRFLEETCKPT 4" (one extra
// "engine <events_done>" line): periodic snapshots fire on event-count
// barriers between batches, kills at batch boundaries. Chained titles
// snapshot their shared delivery state at each session completion (a
// boundary snapshot), because the live shard mid-batch can reflect a
// half-run session; in-flight sessions are simply re-simulated on resume.
#pragma once

#include "fleet/fleet_internal.h"

namespace vbr::fleet::detail {

/// Executes every remaining session of ctx on one shared-virtual-time
/// event timeline; on return, ctx's mutable state (done counts, shard /
/// CDN folds, track rows, records or streamed folds) is exactly what the
/// stepper's worker pool would have left, so run_fleet's finalize runs
/// unchanged on top. Throws FleetKilled when the kill schedule fires,
/// std::system_error on checkpoint I/O failure, and propagates the first
/// session error in event order.
void run_fleet_event(EngineContext& ctx);

}  // namespace vbr::fleet::detail
