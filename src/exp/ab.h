// In-situ A/B experiment analysis.
//
// The assignment side of an experiment lives inside run_fleet (stratified
// permuted-block randomization, src/fleet/fleet.h); this layer turns the
// resulting FleetResult into an AbReport: per-arm point estimates with
// bootstrap confidence intervals, pairwise Welch / Mann-Whitney tests with
// a single Benjamini-Hochberg family across every (metric, pair, test)
// hypothesis, a significant-pair matrix per metric, and per-stratum
// breakdowns. Everything is seeded and counter-based, so the report JSON is
// byte-identical across runs and thread counts.
//
// Metrics analyzed: every pluggable QoE-model score the fleet recorded
// (FleetResult::qoe_model_names order), then the fixed session outcomes
// rebuffer_s, all_quality_mean, startup_delay_s, data_usage_mb.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "stats/bootstrap.h"
#include "stats/inference.h"

namespace vbr::exp {

struct AbAnalysisConfig {
  /// FDR level for the Benjamini-Hochberg family (significance threshold on
  /// adjusted p-values). Must be in (0, 1).
  double alpha = 0.05;
  /// Bootstrap settings shared by per-arm CIs, pairwise difference CIs, and
  /// per-stratum CIs (the per-use counter salts keep draws independent).
  stats::BootstrapConfig bootstrap;
  /// Strata with fewer sessions per arm than this get a point estimate but
  /// no confidence interval (a 3-session bootstrap is noise, not evidence).
  std::size_t min_stratum_sessions = 8;

  /// Throws std::invalid_argument with field-named messages.
  void validate() const;
};

/// Point estimate + bootstrap CI for one (arm, metric) cell.
struct AbEstimate {
  std::size_t n = 0;
  double mean = 0.0;
  bool has_ci = false;  ///< False when n is below the CI floor.
  double lo = 0.0;
  double hi = 0.0;
};

/// One pairwise arm comparison under one metric.
struct AbPairTest {
  std::size_t arm_a = 0;
  std::size_t arm_b = 0;
  stats::TTestResult welch;     ///< mean(a) - mean(b) direction.
  stats::MannWhitneyResult mwu;
  double welch_p_adj = 1.0;     ///< BH-adjusted across the whole family.
  double mwu_p_adj = 1.0;
  stats::BootstrapCi diff;      ///< CI for mean(a) - mean(b).
  /// min(welch_p_adj, mwu_p_adj) < alpha.
  bool significant = false;
};

/// Everything the analysis produced for one metric.
struct AbMetricReport {
  std::string metric;
  std::vector<AbEstimate> arms;   ///< One per arm, arm order.
  std::vector<AbPairTest> pairs;  ///< All (a < b) pairs, lexicographic.
};

/// Per-stratum per-arm cells for one stratum that saw sessions.
struct AbStratumReport {
  std::uint32_t stratum = 0;  ///< trace_bucket * 10 + popularity decile.
  /// cells[metric][arm], metric order matching AbReport::metrics.
  std::vector<std::vector<AbEstimate>> cells;
};

struct AbReport {
  std::vector<std::string> arm_labels;
  std::vector<std::string> metric_names;
  double alpha = 0.05;
  std::size_t hypotheses = 0;  ///< BH family size: metrics * pairs * 2.
  std::vector<AbMetricReport> metrics;
  std::vector<AbStratumReport> strata;  ///< Ascending stratum id.

  /// True when any test found the (a, b) pair significant under any metric.
  [[nodiscard]] bool any_significant() const;

  /// Serializes the report as one deterministic JSON object (ab_report.json
  /// schema; obs json_util writers, byte-identical across runs).
  void write_json(std::ostream& out) const;
};

/// Analyzes an experiment-enabled fleet result. Throws std::invalid_argument
/// when the result did not come from an experiment run (experiment_enabled
/// false), when the config is malformed, or when any arm has fewer than two
/// sessions (the tests need n >= 2 per side).
[[nodiscard]] AbReport analyze_ab(const fleet::FleetResult& result,
                                  const AbAnalysisConfig& cfg = {});

}  // namespace vbr::exp
