#include "exp/ab.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_util.h"

namespace vbr::exp {

namespace {

// Fixed session-outcome metrics appended after the QoE-model scores.
constexpr const char* kFixedMetrics[] = {
    "rebuffer_s",
    "all_quality_mean",
    "startup_delay_s",
    "data_usage_mb",
};

double fixed_metric_value(const fleet::FleetSessionRecord& rec,
                          std::size_t which) {
  switch (which) {
    case 0:
      return rec.qoe.rebuffer_s;
    case 1:
      return rec.qoe.all_quality_mean;
    case 2:
      return rec.qoe.startup_delay_s;
    default:
      return rec.qoe.data_usage_mb;
  }
}

AbEstimate estimate(std::span<const double> xs, const stats::BootstrapConfig& b,
                    std::size_t min_n_for_ci) {
  AbEstimate e;
  e.n = xs.size();
  double sum = 0.0;
  for (double v : xs) {
    sum += v;
  }
  e.mean = xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
  if (xs.size() >= min_n_for_ci && !xs.empty()) {
    const stats::BootstrapCi ci = stats::bootstrap_mean_ci(xs, b);
    e.has_ci = true;
    e.lo = ci.lo;
    e.hi = ci.hi;
  }
  return e;
}

void append_estimate(std::string& s, const AbEstimate& e) {
  using obs::detail::append_double;
  using obs::detail::append_uint;
  s += "{\"n\":";
  append_uint(s, e.n);
  s += ",\"mean\":";
  append_double(s, e.mean);
  if (e.has_ci) {
    s += ",\"lo\":";
    append_double(s, e.lo);
    s += ",\"hi\":";
    append_double(s, e.hi);
  }
  s += "}";
}

}  // namespace

void AbAnalysisConfig::validate() const {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument(
        "AbAnalysisConfig.alpha: must be in (0, 1)");
  }
  if (bootstrap.resamples == 0) {
    throw std::invalid_argument(
        "AbAnalysisConfig.bootstrap.resamples: must be >= 1");
  }
  if (!(bootstrap.confidence > 0.0 && bootstrap.confidence < 1.0)) {
    throw std::invalid_argument(
        "AbAnalysisConfig.bootstrap.confidence: must be in (0, 1)");
  }
  if (min_stratum_sessions < 2) {
    throw std::invalid_argument(
        "AbAnalysisConfig.min_stratum_sessions: must be >= 2 (the bootstrap "
        "needs at least two observations)");
  }
}

bool AbReport::any_significant() const {
  for (const AbMetricReport& m : metrics) {
    for (const AbPairTest& p : m.pairs) {
      if (p.significant) {
        return true;
      }
    }
  }
  return false;
}

AbReport analyze_ab(const fleet::FleetResult& result,
                    const AbAnalysisConfig& cfg) {
  cfg.validate();
  if (!result.experiment_enabled) {
    throw std::invalid_argument(
        "analyze_ab: FleetResult.experiment_enabled is false — the fleet run "
        "had no FleetSpec.experiment block");
  }
  const std::size_t num_arms = result.per_class.size();
  const std::size_t num_qoe = result.qoe_model_names.size();
  const std::size_t num_fixed = std::size(kFixedMetrics);
  const std::size_t num_metrics = num_qoe + num_fixed;

  AbReport report;
  report.alpha = cfg.alpha;
  report.arm_labels.reserve(num_arms);
  for (const fleet::FleetSchemeReport& r : result.per_class) {
    report.arm_labels.push_back(r.label);
  }
  report.metric_names = result.qoe_model_names;
  for (const char* name : kFixedMetrics) {
    report.metric_names.emplace_back(name);
  }

  // values[metric][arm] — session values in session-id (arrival) order, so
  // every downstream statistic folds deterministically.
  std::vector<std::vector<std::vector<double>>> values(
      num_metrics, std::vector<std::vector<double>>(num_arms));
  // Per-stratum cells keyed by stratum id (std::map = ascending order).
  std::map<std::uint32_t, std::vector<std::vector<std::vector<double>>>>
      stratum_values;
  for (const fleet::FleetSessionRecord& rec : result.sessions) {
    if (rec.class_index >= num_arms) {
      continue;
    }
    auto it = stratum_values.find(rec.stratum);
    if (it == stratum_values.end()) {
      it = stratum_values
               .emplace(rec.stratum,
                        std::vector<std::vector<std::vector<double>>>(
                            num_metrics,
                            std::vector<std::vector<double>>(num_arms)))
               .first;
    }
    for (std::size_t m = 0; m < num_metrics; ++m) {
      double v = 0.0;
      if (m < num_qoe) {
        v = m < rec.qoe_scores.size() ? rec.qoe_scores[m] : 0.0;
      } else {
        v = fixed_metric_value(rec, m - num_qoe);
      }
      values[m][rec.class_index].push_back(v);
      it->second[m][rec.class_index].push_back(v);
    }
  }
  for (std::size_t a = 0; a < num_arms; ++a) {
    if (!values.empty() && values[0][a].size() < 2) {
      throw std::invalid_argument(
          "analyze_ab: arm \"" + report.arm_labels[a] +
          "\" has fewer than 2 sessions — the tests need n >= 2 per arm");
    }
  }

  // Build every metric report, collecting raw p-values into one flat family
  // ordered (metric, pair, {welch, mwu}) for a single BH correction.
  std::vector<double> family;
  family.reserve(num_metrics * num_arms * num_arms);
  report.metrics.resize(num_metrics);
  for (std::size_t m = 0; m < num_metrics; ++m) {
    AbMetricReport& mr = report.metrics[m];
    mr.metric = report.metric_names[m];
    mr.arms.reserve(num_arms);
    for (std::size_t a = 0; a < num_arms; ++a) {
      mr.arms.push_back(estimate(values[m][a], cfg.bootstrap, 2));
    }
    for (std::size_t a = 0; a < num_arms; ++a) {
      for (std::size_t b = a + 1; b < num_arms; ++b) {
        AbPairTest pt;
        pt.arm_a = a;
        pt.arm_b = b;
        pt.welch = stats::welch_t_test(values[m][a], values[m][b]);
        pt.mwu = stats::mann_whitney_u(values[m][a], values[m][b]);
        pt.diff =
            stats::bootstrap_mean_diff_ci(values[m][a], values[m][b],
                                          cfg.bootstrap);
        family.push_back(pt.welch.p);
        family.push_back(pt.mwu.p);
        mr.pairs.push_back(std::move(pt));
      }
    }
  }
  report.hypotheses = family.size();
  const std::vector<double> adjusted = stats::benjamini_hochberg(family);
  std::size_t k = 0;
  for (AbMetricReport& mr : report.metrics) {
    for (AbPairTest& pt : mr.pairs) {
      pt.welch_p_adj = adjusted[k++];
      pt.mwu_p_adj = adjusted[k++];
      pt.significant =
          std::min(pt.welch_p_adj, pt.mwu_p_adj) < cfg.alpha;
    }
  }

  // Per-stratum breakdown: point estimates always, CIs only with enough
  // sessions in the cell.
  report.strata.reserve(stratum_values.size());
  for (const auto& [stratum, cells] : stratum_values) {
    AbStratumReport sr;
    sr.stratum = stratum;
    sr.cells.resize(num_metrics);
    for (std::size_t m = 0; m < num_metrics; ++m) {
      sr.cells[m].reserve(num_arms);
      for (std::size_t a = 0; a < num_arms; ++a) {
        sr.cells[m].push_back(
            estimate(cells[m][a], cfg.bootstrap, cfg.min_stratum_sessions));
      }
    }
    report.strata.push_back(std::move(sr));
  }
  return report;
}

void AbReport::write_json(std::ostream& out) const {
  using obs::detail::append_double;
  using obs::detail::append_json_string;
  using obs::detail::append_uint;

  std::string s;
  s.reserve(4096);
  s += "{\"arms\":[";
  for (std::size_t a = 0; a < arm_labels.size(); ++a) {
    if (a > 0) {
      s += ',';
    }
    append_json_string(s, arm_labels[a]);
  }
  s += "],\"alpha\":";
  append_double(s, alpha);
  s += ",\"hypotheses\":";
  append_uint(s, hypotheses);
  s += ",\"metrics\":[";
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    const AbMetricReport& mr = metrics[m];
    if (m > 0) {
      s += ',';
    }
    s += "{\"metric\":";
    append_json_string(s, mr.metric);
    s += ",\"arms\":[";
    for (std::size_t a = 0; a < mr.arms.size(); ++a) {
      if (a > 0) {
        s += ',';
      }
      append_estimate(s, mr.arms[a]);
    }
    s += "],\"pairs\":[";
    for (std::size_t p = 0; p < mr.pairs.size(); ++p) {
      const AbPairTest& pt = mr.pairs[p];
      if (p > 0) {
        s += ',';
      }
      s += "{\"a\":";
      append_uint(s, pt.arm_a);
      s += ",\"b\":";
      append_uint(s, pt.arm_b);
      s += ",\"welch_t\":";
      append_double(s, pt.welch.t);
      s += ",\"welch_df\":";
      append_double(s, pt.welch.df);
      s += ",\"welch_p\":";
      append_double(s, pt.welch.p);
      s += ",\"welch_p_adj\":";
      append_double(s, pt.welch_p_adj);
      s += ",\"mwu_u1\":";
      append_double(s, pt.mwu.u1);
      s += ",\"mwu_p\":";
      append_double(s, pt.mwu.p);
      s += ",\"mwu_p_adj\":";
      append_double(s, pt.mwu_p_adj);
      s += ",\"diff\":";
      append_double(s, pt.diff.point);
      s += ",\"diff_lo\":";
      append_double(s, pt.diff.lo);
      s += ",\"diff_hi\":";
      append_double(s, pt.diff.hi);
      s += ",\"significant\":";
      s += pt.significant ? "true" : "false";
      s += "}";
    }
    // Square significant-pair matrix (row-major, self-pairs false).
    s += "],\"significant_matrix\":[";
    const std::size_t n = arm_labels.size();
    std::vector<bool> sig(n * n, false);
    for (const AbPairTest& pt : mr.pairs) {
      if (pt.significant) {
        sig[pt.arm_a * n + pt.arm_b] = true;
        sig[pt.arm_b * n + pt.arm_a] = true;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) {
        s += ',';
      }
      s += '[';
      for (std::size_t j = 0; j < n; ++j) {
        if (j > 0) {
          s += ',';
        }
        s += sig[i * n + j] ? "true" : "false";
      }
      s += ']';
    }
    s += "]}";
  }
  s += "],\"strata\":[";
  for (std::size_t si = 0; si < strata.size(); ++si) {
    const AbStratumReport& sr = strata[si];
    if (si > 0) {
      s += ',';
    }
    s += "{\"stratum\":";
    append_uint(s, sr.stratum);
    s += ",\"cells\":[";
    for (std::size_t m = 0; m < sr.cells.size(); ++m) {
      if (m > 0) {
        s += ',';
      }
      s += '[';
      for (std::size_t a = 0; a < sr.cells[m].size(); ++a) {
        if (a > 0) {
          s += ',';
        }
        append_estimate(s, sr.cells[m][a]);
      }
      s += ']';
    }
    s += "]}";
  }
  s += "]}";
  out << s << '\n';
}

}  // namespace vbr::exp
