#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/inference.h"

namespace vbr::stats {
namespace {

constexpr std::uint64_t kSaltOneSample = 0xab000001u;
constexpr std::uint64_t kSaltDiffA = 0xab0000a0u;
constexpr std::uint64_t kSaltDiffB = 0xab0000b0u;

// splitmix64 finalizer — the same integer-only construction the fleet layer
// uses for its keyed draws, kept local so the stats library has no upward
// dependency.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Resample index as a pure function of (seed, salt, resample, position).
std::size_t draw_index(std::uint64_t seed, std::uint64_t salt, std::size_t r,
                       std::size_t j, std::size_t n) {
  const std::uint64_t key =
      mix64(seed ^ mix64(salt + 0x9e3779b97f4a7c15ull * (r + 1)));
  return static_cast<std::size_t>(
      mix64(key + 0xbf58476d1ce4e5b9ull * (j + 1)) % n);
}

double span_mean(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double resample_mean(std::span<const double> xs, std::uint64_t seed,
                     std::uint64_t salt, std::size_t r) {
  double acc = 0.0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    acc += xs[draw_index(seed, salt, r, j, xs.size())];
  }
  return acc / static_cast<double>(xs.size());
}

// Type-7 (linear interpolation) quantile of an already-sorted vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void validate_config(const BootstrapConfig& cfg) {
  if (cfg.resamples == 0) {
    throw std::invalid_argument("bootstrap: resamples must be positive");
  }
  if (!(cfg.confidence > 0.0 && cfg.confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence must be in (0, 1)");
  }
}

// Jackknife acceleration constant from leave-one-out statistic values.
double acceleration(const std::vector<double>& jack) {
  double mean = 0.0;
  for (double v : jack) mean += v;
  mean /= static_cast<double>(jack.size());
  double num = 0.0;
  double den = 0.0;
  for (double v : jack) {
    const double d = mean - v;
    num += d * d * d;
    den += d * d;
  }
  if (den == 0.0) return 0.0;
  return num / (6.0 * std::pow(den, 1.5));
}

BootstrapCi interval_from_resamples(double point, std::vector<double> thetas,
                                    const std::vector<double>& jack,
                                    const BootstrapConfig& cfg) {
  std::sort(thetas.begin(), thetas.end());
  BootstrapCi ci;
  ci.point = point;
  if (thetas.front() == thetas.back()) {
    ci.lo = ci.hi = thetas.front();
    return ci;
  }
  const double alpha = 1.0 - cfg.confidence;
  double q_lo = 0.5 * alpha;
  double q_hi = 1.0 - 0.5 * alpha;
  if (cfg.kind == BootstrapKind::kBca) {
    const double b = static_cast<double>(thetas.size());
    double below = 0.0;
    for (double v : thetas) {
      if (v < point) below += 1.0;
      else if (v == point) below += 0.5;
    }
    const double frac =
        std::clamp(below / b, 0.5 / b, 1.0 - 0.5 / b);
    const double z0 = normal_ppf(frac);
    const double a = jack.size() >= 2 ? acceleration(jack) : 0.0;
    const double z_lo = normal_ppf(q_lo);
    const double z_hi = normal_ppf(q_hi);
    q_lo = normal_cdf(z0 + (z0 + z_lo) / (1.0 - a * (z0 + z_lo)));
    q_hi = normal_cdf(z0 + (z0 + z_hi) / (1.0 - a * (z0 + z_hi)));
    if (q_lo > q_hi) std::swap(q_lo, q_hi);
  }
  ci.lo = sorted_quantile(thetas, q_lo);
  ci.hi = sorted_quantile(thetas, q_hi);
  return ci;
}

}  // namespace

BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                              const BootstrapConfig& cfg) {
  validate_config(cfg);
  if (xs.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  const double point = span_mean(xs);
  std::vector<double> thetas(cfg.resamples);
  for (std::size_t r = 0; r < cfg.resamples; ++r) {
    thetas[r] = resample_mean(xs, cfg.seed, kSaltOneSample, r);
  }
  std::vector<double> jack;
  if (xs.size() >= 2) {
    const double total = point * static_cast<double>(xs.size());
    jack.resize(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      jack[i] = (total - xs[i]) / static_cast<double>(xs.size() - 1);
    }
  }
  return interval_from_resamples(point, std::move(thetas), jack, cfg);
}

BootstrapCi bootstrap_mean_diff_ci(std::span<const double> a,
                                   std::span<const double> b,
                                   const BootstrapConfig& cfg) {
  validate_config(cfg);
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("bootstrap_mean_diff_ci: empty sample");
  }
  const double mean_a = span_mean(a);
  const double mean_b = span_mean(b);
  const double point = mean_a - mean_b;
  std::vector<double> thetas(cfg.resamples);
  for (std::size_t r = 0; r < cfg.resamples; ++r) {
    thetas[r] = resample_mean(a, cfg.seed, kSaltDiffA, r) -
                resample_mean(b, cfg.seed, kSaltDiffB, r);
  }
  // Leave-one-out over every observation of both samples.
  std::vector<double> jack;
  jack.reserve(a.size() + b.size());
  if (a.size() >= 2) {
    const double total = mean_a * static_cast<double>(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      jack.push_back((total - a[i]) / static_cast<double>(a.size() - 1) -
                     mean_b);
    }
  }
  if (b.size() >= 2) {
    const double total = mean_b * static_cast<double>(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      jack.push_back(mean_a -
                     (total - b[i]) / static_cast<double>(b.size() - 1));
    }
  }
  return interval_from_resamples(point, std::move(thetas), jack, cfg);
}

}  // namespace vbr::stats
