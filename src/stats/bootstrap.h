// Seeded, counter-based bootstrap confidence intervals for sample means and
// mean differences. Resample indices are pure functions of
// (seed, resample, position), so results are bit-identical across runs,
// platforms, and thread counts — no RNG stream is shared or advanced.
//
// Two interval kinds:
//   - kPercentile: plain percentile interval of the resampled statistic
//     (type-7 linear-interpolated quantiles of the sorted resamples).
//   - kBca: bias-corrected and accelerated (Efron). Bias correction z0 from
//     the fraction of resamples below the point estimate (ties counted at
//     half weight, fraction clamped to [0.5/B, 1 - 0.5/B]); acceleration
//     from the jackknife skewness of the statistic (leave-one-out over every
//     observation, both samples for the two-sample difference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace vbr::stats {

enum class BootstrapKind { kPercentile, kBca };

struct BootstrapConfig {
  std::size_t resamples = 2000;
  double confidence = 0.95;  ///< Two-sided coverage, in (0, 1).
  std::uint64_t seed = 0x5eedab00u;
  BootstrapKind kind = BootstrapKind::kBca;
};

struct BootstrapCi {
  double point = 0.0;  ///< Statistic on the original sample(s).
  double lo = 0.0;
  double hi = 0.0;
};

/// Confidence interval for mean(xs). Throws std::invalid_argument on an
/// empty sample, zero resamples, or confidence outside (0, 1). A singleton
/// sample yields the degenerate interval [x, x].
BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                              const BootstrapConfig& cfg = {});

/// Confidence interval for mean(a) - mean(b), resampling each side
/// independently (distinct counter salts per side). Same preconditions as
/// bootstrap_mean_ci, applied to both samples.
BootstrapCi bootstrap_mean_diff_ci(std::span<const double> a,
                                   std::span<const double> b,
                                   const BootstrapConfig& cfg = {});

}  // namespace vbr::stats
