#include "stats/inference.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>

namespace vbr::stats {
namespace {

// Average ranks (1-based) of the combined sample, ties share the mean rank.
// Local to this translation unit so the inference library stays free of the
// metrics layer.
std::vector<double> average_ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = 0.5 * (static_cast<double>(i + 1) +
                              static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}

double sample_variance(std::span<const double> xs, double mean) {
  double acc = 0.0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return acc / static_cast<double>(xs.size() - 1);
}

double span_mean(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

// Continued-fraction kernel for the regularized incomplete beta (Numerical
// Recipes "betacf" form, modified Lentz iteration).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-16;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double normal_ppf(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_ppf: p must be in (0, 1)");
  }
  // Acklam's rational approximation (relative error ~1.15e-9) ...
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // ... polished with one Halley step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::invalid_argument("incomplete_beta: a and b must be positive");
  }
  if (!(x >= 0.0 && x <= 1.0)) {
    throw std::invalid_argument("incomplete_beta: x must be in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  // Use the continued fraction on whichever side converges fastest.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(ln_front) * beta_cf(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_front) * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_sf(double t, double df) {
  if (!(df > 0.0)) {
    throw std::invalid_argument("student_t_sf: df must be positive");
  }
  if (std::isinf(t)) return t > 0.0 ? 0.0 : 1.0;
  const double x = df / (df + t * t);
  const double half_tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t >= 0.0 ? half_tail : 1.0 - half_tail;
}

TTestResult welch_t_test(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need >= 2 samples per side");
  }
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double m1 = span_mean(a);
  const double m2 = span_mean(b);
  const double v1 = sample_variance(a, m1);
  const double v2 = sample_variance(b, m2);
  const double se1 = v1 / n1;
  const double se2 = v2 / n2;
  TTestResult r;
  if (se1 + se2 == 0.0) {
    // Both sides constant: the statistic is 0/0. Pin the degenerate case.
    r.t = 0.0;
    r.df = n1 + n2 - 2.0;
    r.p = (m1 == m2) ? 1.0 : 0.0;
    return r;
  }
  r.t = (m1 - m2) / std::sqrt(se1 + se2);
  r.df = (se1 + se2) * (se1 + se2) /
         (se1 * se1 / (n1 - 1.0) + se2 * se2 / (n2 - 1.0));
  r.p = std::min(1.0, 2.0 * student_t_sf(std::fabs(r.t), r.df));
  return r;
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mann_whitney_u: both samples must be "
                                "non-empty");
  }
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  std::vector<double> combined;
  combined.reserve(a.size() + b.size());
  combined.insert(combined.end(), a.begin(), a.end());
  combined.insert(combined.end(), b.begin(), b.end());
  const std::vector<double> rank = average_ranks(combined);
  double r1 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) r1 += rank[i];

  MannWhitneyResult res;
  res.u1 = r1 - n1 * (n1 + 1.0) / 2.0;
  const double u2 = n1 * n2 - res.u1;

  // Tie correction: sum over tie groups of (t^3 - t).
  std::vector<double> sorted = combined;
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double n = n1 + n2;
  const double sigma2 =
      (n1 * n2 / 12.0) * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (sigma2 <= 0.0) {
    // Every observation tied: no evidence either way.
    res.z = 0.0;
    res.p = 1.0;
    return res;
  }
  const double u = std::max(res.u1, u2);
  const double mu = n1 * n2 / 2.0;
  res.z = (u - mu - 0.5) / std::sqrt(sigma2);
  res.p = std::min(1.0, 2.0 * (1.0 - normal_cdf(res.z)));
  return res;
}

std::vector<double> benjamini_hochberg(std::span<const double> pvalues) {
  const std::size_t m = pvalues.size();
  for (double p : pvalues) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("benjamini_hochberg: p-values must be in "
                                  "[0, 1]");
    }
  }
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Descending by p; cumulative minimum of p * m / rank from the top down.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t i,
                                                   std::size_t j) {
    return pvalues[i] > pvalues[j];
  });
  std::vector<double> adjusted(m, 0.0);
  double running = 1.0;
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t idx = order[k];
    const double rank = static_cast<double>(m - k);
    running = std::min(running, pvalues[idx] * static_cast<double>(m) / rank);
    adjusted[idx] = running;
  }
  return adjusted;
}

}  // namespace vbr::stats
