// Dependency-free statistical inference for A/B experiment analysis:
// Welch's unequal-variance t-test, the Mann-Whitney U rank-sum test, and
// Benjamini-Hochberg false-discovery-rate correction.
//
// Conventions are pinned to the reference implementations the oracle
// fixtures under tests/data/stats/ were generated against:
//   - Welch: scipy.stats.ttest_ind(equal_var=False) — sample variances with
//     ddof=1, Welch-Satterthwaite degrees of freedom, two-sided p-value via
//     the Student-t survival function (regularized incomplete beta).
//   - Mann-Whitney U: scipy.stats.mannwhitneyu(alternative='two-sided',
//     method='asymptotic') — U1 = R1 - n1(n1+1)/2 with average ranks for
//     ties, normal approximation with continuity correction 0.5 and the
//     tie-corrected variance term (sum t^3 - sum t) / (n (n-1)).
//   - Benjamini-Hochberg: R p.adjust(method="BH") — cumulative minimum of
//     p_(i) * m / i taken from the largest p downward, clipped at 1.
//
// The special functions (normal CDF/quantile, Student-t survival function,
// regularized incomplete beta) are exposed because the bootstrap layer and
// the property tests both need them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

/// Standard normal CDF, accurate to ~1e-15 (via std::erfc).
double normal_cdf(double x);

/// Standard normal quantile (inverse CDF), p in (0, 1). Acklam's rational
/// approximation polished with one Halley step; absolute error < 1e-13.
/// Throws std::invalid_argument outside (0, 1).
double normal_ppf(double p);

/// Regularized incomplete beta function I_x(a, b), a, b > 0, x in [0, 1].
/// Continued-fraction (Lentz) evaluation, |error| < 1e-14.
double incomplete_beta(double a, double b, double x);

/// Student-t survival function P(T > t) for df > 0 degrees of freedom.
double student_t_sf(double t, double df);

/// Result of Welch's two-sample, two-sided t-test.
struct TTestResult {
  double t = 0.0;   ///< Welch t statistic (mean(a) - mean(b)) / se.
  double df = 0.0;  ///< Welch-Satterthwaite degrees of freedom.
  double p = 1.0;   ///< Two-sided p-value.
};

/// Welch's unequal-variance t-test. Requires >= 2 samples per side.
/// If both sample variances are zero the statistic is degenerate: p = 1
/// when the means are equal, p = 0 otherwise (df reported as n1 + n2 - 2).
/// Throws std::invalid_argument if either side has fewer than 2 samples.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Result of the two-sided Mann-Whitney U test (asymptotic, tie-corrected).
struct MannWhitneyResult {
  double u1 = 0.0;  ///< U statistic of the first sample: R1 - n1(n1+1)/2.
  double z = 0.0;   ///< Continuity-corrected z-score of max(U1, U2).
  double p = 1.0;   ///< Two-sided p-value (normal approximation).
};

/// Mann-Whitney U with average ranks for ties and the normal approximation
/// with continuity correction. If every observation is tied the variance is
/// zero and the test is degenerate: z = 0, p = 1. Throws
/// std::invalid_argument if either side is empty.
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

/// Benjamini-Hochberg adjusted p-values (same order as the input). Values
/// must be in [0, 1]; throws std::invalid_argument otherwise. Empty input
/// yields an empty result.
std::vector<double> benjamini_hochberg(std::span<const double> pvalues);

}  // namespace vbr::stats
