#include "cli_args.h"

#include <memory>
#include <stdexcept>

#include "learn/learned_scheme.h"
#include "learn/policy.h"

namespace vbr::tools {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::set<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (known.find(name) == known.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    // A flag consumes the next token as its value unless that token is
    // itself a flag (then it is a bare boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::size_t CliArgs::get_size(const std::string& name,
                              std::size_t fallback) const {
  const double v = get_double(name, static_cast<double>(fallback));
  if (v < 0.0) {
    throw std::invalid_argument("flag --" + name + " must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

const std::set<std::string>& fault_flag_names() {
  static const std::set<std::string> names = {
      "fail-rate",   "fault-connect", "fault-drop", "fault-timeout",
      "fault-seed",  "retry-max",     "retry-backoff", "retry-timeout",
      "resume",      "no-downgrade"};
  return names;
}

net::FaultConfig fault_config_from_args(const CliArgs& args) {
  net::FaultConfig fc;
  const double rate = args.get_double("fail-rate", 0.0);
  fc.connect_failure_prob = args.get_double("fault-connect", rate / 3.0);
  fc.mid_drop_prob = args.get_double("fault-drop", rate / 3.0);
  fc.timeout_prob = args.get_double("fault-timeout", rate / 3.0);
  fc.seed = args.get_size("fault-seed", fc.seed);
  fc.validate();
  return fc;
}

sim::RetryPolicy retry_policy_from_args(const CliArgs& args) {
  sim::RetryPolicy rp;
  rp.max_attempts = args.get_size("retry-max", rp.max_attempts);
  rp.backoff_base_s = args.get_double("retry-backoff", rp.backoff_base_s);
  rp.request_timeout_s =
      args.get_double("retry-timeout", rp.request_timeout_s);
  rp.resume_partial = args.has("resume");
  rp.downgrade_on_failure = !args.has("no-downgrade");
  rp.validate();
  return rp;
}

const std::set<std::string>& size_knowledge_flag_names() {
  static const std::set<std::string> names = {
      "size-knowledge", "size-err",   "size-miss-rate", "size-prefix",
      "size-correct",   "size-alpha", "size-seed"};
  return names;
}

const std::set<std::string>& telemetry_flag_names() {
  static const std::set<std::string> names = {"trace-jsonl", "metrics-json",
                                              "trace-durable"};
  return names;
}

video::SizeKnowledgeConfig size_knowledge_config_from_args(
    const CliArgs& args) {
  video::SizeKnowledgeConfig sc;
  sc.mode = video::size_knowledge_from_string(
      args.get("size-knowledge", video::to_string(sc.mode)));
  sc.noise_err = args.get_double("size-err", sc.noise_err);
  sc.miss_rate = args.get_double("size-miss-rate", sc.miss_rate);
  sc.known_prefix_chunks =
      args.get_size("size-prefix", sc.known_prefix_chunks);
  sc.online_correction = args.has("size-correct");
  sc.correction_alpha = args.get_double("size-alpha", sc.correction_alpha);
  sc.seed = args.get_size("size-seed", static_cast<std::size_t>(sc.seed));
  sc.validate();
  return sc;
}

const std::set<std::string>& fleet_flag_names() {
  static const std::set<std::string> names = {
      "fleet",           "fleet-sessions",       "fleet-titles",
      "fleet-alpha",     "fleet-title-duration", "fleet-rate",
      "fleet-horizon",   "fleet-arrival",        "fleet-burst-start",
      "fleet-burst-duration", "fleet-burst-mult", "fleet-cache-mb",
      "fleet-threads",   "fleet-seed",           "fleet-full-watch",
      "fleet-report",    "checkpoint",           "checkpoint-every",
      "fleet-kill-after", "fleet-throttle-us",
      "fleet-engine",    "fleet-stream-agg",
      "fleet-watchdog-decisions", "fleet-watchdog-sim-s",
      "fleet-cdn",       "fleet-cdn-nodes",      "fleet-cdn-regional-mb",
      "fleet-cdn-backhaul-mbps", "fleet-cdn-no-coalesce", "fleet-cdn-seed",
      "fleet-brownout-start", "fleet-brownout-duration",
      "fleet-brownout-rate", "fleet-brownout-capacity",
      "fleet-shed-capacity", "fleet-outages", "fleet-outage-duration"};
  return names;
}

fleet::FleetSpec fleet_spec_from_args(const CliArgs& args) {
  fleet::FleetSpec spec;
  spec.catalog.num_titles = args.get_size("fleet-titles", 16);
  spec.catalog.zipf_alpha = args.get_double("fleet-alpha", 0.8);
  spec.catalog.title_duration_s =
      args.get_double("fleet-title-duration", 120.0);
  spec.arrivals.rate_per_s = args.get_double("fleet-rate", 0.5);
  spec.arrivals.horizon_s = args.get_double("fleet-horizon", 300.0);
  spec.arrivals.max_sessions = args.get_size("fleet-sessions", 200);
  const std::string kind = args.get("fleet-arrival", "poisson");
  if (kind == "flash") {
    spec.arrivals.kind = fleet::ArrivalKind::kFlashCrowd;
    spec.arrivals.burst_start_s = args.get_double("fleet-burst-start", 60.0);
    spec.arrivals.burst_duration_s =
        args.get_double("fleet-burst-duration", 30.0);
    spec.arrivals.burst_multiplier = args.get_double("fleet-burst-mult", 8.0);
  } else if (kind != "poisson") {
    throw std::invalid_argument("flag --fleet-arrival expects poisson|flash");
  }
  const double cache_mb = args.get_double("fleet-cache-mb", 1000.0);
  if (cache_mb < 0.0) {
    throw std::invalid_argument("flag --fleet-cache-mb must be non-negative");
  }
  spec.use_cache = cache_mb > 0.0;
  if (spec.use_cache) {
    spec.cache.capacity_bits = cache_mb * 8e6;
  }
  spec.threads = static_cast<unsigned>(args.get_size("fleet-threads", 0));
  spec.seed = args.get_size("fleet-seed", 7);
  // Execution engine. Both produce byte-identical output; "event" runs
  // every session on one shared-virtual-time timeline (the 100k-session
  // mode) and unlocks --fleet-stream-agg's constant-memory aggregation.
  const std::string engine = args.get("fleet-engine", "stepped");
  if (engine == "event") {
    spec.engine = fleet::FleetEngine::kEvent;
  } else if (engine != "stepped") {
    throw std::invalid_argument("flag --fleet-engine expects event|stepped");
  }
  spec.stream_aggregation = args.has("fleet-stream-agg");
  spec.watch.full_watch_prob = args.get_double("fleet-full-watch", 0.6);
  // Crash safety. In fleet mode --resume keeps its per-request meaning
  // (byte-range resume of partial downloads) AND, when --checkpoint is
  // set, additionally asks run_fleet to resume from that checkpoint file
  // if it exists.
  spec.checkpoint_path = args.get("checkpoint", "");
  spec.checkpoint_every =
      args.get_size("checkpoint-every", spec.checkpoint_every);
  spec.resume = args.has("resume") && !spec.checkpoint_path.empty();
  spec.kill.after_sessions = args.get_size("fleet-kill-after", 0);
  spec.throttle_us = args.get_size("fleet-throttle-us", 0);
  spec.session.watchdog_max_decisions =
      args.get_size("fleet-watchdog-decisions", 0);
  spec.session.watchdog_max_sim_s =
      args.get_double("fleet-watchdog-sim-s", 0.0);
  // CDN hierarchy + overload protection.
  spec.cdn.enabled = args.has("fleet-cdn");
  if (spec.cdn.enabled) {
    spec.cdn.coalesce = !args.has("fleet-cdn-no-coalesce");
    spec.cdn.regional.nodes = args.get_size("fleet-cdn-nodes", 2);
    spec.cdn.regional.capacity_bits =
        args.get_double("fleet-cdn-regional-mb", 4000.0) * 8e6;
    spec.cdn.backhaul_bps =
        args.get_double("fleet-cdn-backhaul-mbps", 50.0) * 1e6;
    spec.cdn.seed = args.get_size("fleet-cdn-seed", 11);
    spec.cdn.brownout.start_s = args.get_double("fleet-brownout-start", 0.0);
    spec.cdn.brownout.duration_s =
        args.get_double("fleet-brownout-duration", 0.0);
    spec.cdn.brownout.rate_scale =
        args.get_double("fleet-brownout-rate", 0.5);
    spec.cdn.brownout.capacity_scale =
        args.get_double("fleet-brownout-capacity", 0.5);
    spec.cdn.shed.capacity_sessions =
        args.get_double("fleet-shed-capacity", 0.0);
    spec.cdn.regional.outages_per_node = args.get_size("fleet-outages", 0);
    spec.cdn.regional.outage_duration_s =
        args.get_double("fleet-outage-duration", 30.0);
    spec.cdn.validate();
  }
  spec.catalog.validate();
  spec.arrivals.validate();
  spec.cache.validate();
  spec.watch.validate();
  return spec;
}

const std::set<std::string>& ab_flag_names() {
  static const std::set<std::string> names = {
      "ab-arms", "ab-seed",      "ab-strata", "ab-alpha",
      "ab-boot", "ab-boot-seed", "ab-ci",     "ab-report"};
  return names;
}

exp::AbAnalysisConfig ab_analysis_config_from_args(const CliArgs& args) {
  exp::AbAnalysisConfig cfg;
  cfg.alpha = args.get_double("ab-alpha", cfg.alpha);
  cfg.bootstrap.resamples =
      args.get_size("ab-boot", cfg.bootstrap.resamples);
  cfg.bootstrap.seed = args.get_size("ab-boot-seed", cfg.bootstrap.seed);
  const std::string ci = args.get("ab-ci", "bca");
  if (ci == "percentile") {
    cfg.bootstrap.kind = stats::BootstrapKind::kPercentile;
  } else if (ci == "bca") {
    cfg.bootstrap.kind = stats::BootstrapKind::kBca;
  } else {
    throw std::invalid_argument("flag --ab-ci expects percentile|bca");
  }
  cfg.validate();
  return cfg;
}

const std::set<std::string>& learned_flag_names() {
  static const std::set<std::string> names = {"policy"};
  return names;
}

sim::SchemeFactory learned_scheme_factory_from_args(const CliArgs& args) {
  const std::string path = args.get("policy", "");
  if (path.empty()) {
    throw std::invalid_argument(
        "scheme 'learned' needs --policy <file> (train one with abrtrain)");
  }
  const auto policy =
      std::make_shared<const learn::Policy>(learn::load_policy_file(path));
  return [policy] { return std::make_unique<learn::LearnedScheme>(policy); };
}

}  // namespace vbr::tools
