#include "cli_args.h"

#include <stdexcept>

namespace vbr::tools {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::set<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (known.find(name) == known.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    // A flag consumes the next token as its value unless that token is
    // itself a flag (then it is a bare boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::size_t CliArgs::get_size(const std::string& name,
                              std::size_t fallback) const {
  const double v = get_double(name, static_cast<double>(fallback));
  if (v < 0.0) {
    throw std::invalid_argument("flag --" + name + " must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

const std::set<std::string>& fault_flag_names() {
  static const std::set<std::string> names = {
      "fail-rate",   "fault-connect", "fault-drop", "fault-timeout",
      "fault-seed",  "retry-max",     "retry-backoff", "retry-timeout",
      "resume",      "no-downgrade"};
  return names;
}

net::FaultConfig fault_config_from_args(const CliArgs& args) {
  net::FaultConfig fc;
  const double rate = args.get_double("fail-rate", 0.0);
  fc.connect_failure_prob = args.get_double("fault-connect", rate / 3.0);
  fc.mid_drop_prob = args.get_double("fault-drop", rate / 3.0);
  fc.timeout_prob = args.get_double("fault-timeout", rate / 3.0);
  fc.seed = args.get_size("fault-seed", fc.seed);
  fc.validate();
  return fc;
}

sim::RetryPolicy retry_policy_from_args(const CliArgs& args) {
  sim::RetryPolicy rp;
  rp.max_attempts = args.get_size("retry-max", rp.max_attempts);
  rp.backoff_base_s = args.get_double("retry-backoff", rp.backoff_base_s);
  rp.request_timeout_s =
      args.get_double("retry-timeout", rp.request_timeout_s);
  rp.resume_partial = args.has("resume");
  rp.downgrade_on_failure = !args.has("no-downgrade");
  rp.validate();
  return rp;
}

const std::set<std::string>& size_knowledge_flag_names() {
  static const std::set<std::string> names = {
      "size-knowledge", "size-err",   "size-miss-rate", "size-prefix",
      "size-correct",   "size-alpha", "size-seed"};
  return names;
}

const std::set<std::string>& telemetry_flag_names() {
  static const std::set<std::string> names = {"trace-jsonl", "metrics-json"};
  return names;
}

video::SizeKnowledgeConfig size_knowledge_config_from_args(
    const CliArgs& args) {
  video::SizeKnowledgeConfig sc;
  sc.mode = video::size_knowledge_from_string(
      args.get("size-knowledge", video::to_string(sc.mode)));
  sc.noise_err = args.get_double("size-err", sc.noise_err);
  sc.miss_rate = args.get_double("size-miss-rate", sc.miss_rate);
  sc.known_prefix_chunks =
      args.get_size("size-prefix", sc.known_prefix_chunks);
  sc.online_correction = args.has("size-correct");
  sc.correction_alpha = args.get_double("size-alpha", sc.correction_alpha);
  sc.seed = args.get_size("size-seed", static_cast<std::size_t>(sc.seed));
  sc.validate();
  return sc;
}

}  // namespace vbr::tools
