#include "cli_args.h"

#include <stdexcept>

namespace vbr::tools {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::set<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (known.find(name) == known.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    // A flag consumes the next token as its value unless that token is
    // itself a flag (then it is a bare boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[name] = argv[++i];
    } else {
      values_[name] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() || it->second.empty() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return fallback;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::size_t CliArgs::get_size(const std::string& name,
                              std::size_t fallback) const {
  const double v = get_double(name, static_cast<double>(fallback));
  if (v < 0.0) {
    throw std::invalid_argument("flag --" + name + " must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace vbr::tools
