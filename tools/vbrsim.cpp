// vbrsim — command-line experiment runner.
//
// Runs one or more ABR schemes over a video and a trace set, printing the
// paper's five QoE metrics and optionally writing per-trace CSV rows.
//
//   vbrsim --scheme CAVA --scheme RobustMPC --traces lte --count 50
//   vbrsim --title Sports --genre sports --codec h265 --chunk 5 --cap 4
//   vbrsim --trace-dir ./my_traces --csv results.csv
//   vbrsim --list-schemes
//
// Flags (defaults in parentheses):
//   --scheme NAME      scheme to run; repeatable via comma list (CAVA)
//   --title NAME       video title label (ED)
//   --genre G          animation|scifi|sports|animal|nature|action (animation)
//   --codec C          h264|h265 (h264)
//   --chunk SECONDS    chunk duration (2)
//   --cap FACTOR       VBR cap factor (2)
//   --duration SECONDS video length (600)
//   --seed N           content seed (42)
//   --traces KIND      lte|fcc (lte)
//   --trace-dir DIR    replay .trace files from DIR instead of synthetic
//   --count N          number of synthetic traces (50)
//   --metric M         phone|tv (phone for lte, tv for fcc)
//   --rtt SECONDS      per-request RTT (0)
//   --abandon          enable segment abandonment
//   --csv FILE         append per-trace CSV rows to FILE
//   --fault-csv FILE   append per-trace fault/retry CSV rows to FILE
//   --list-schemes     print available scheme names and exit
//
// Fault-injection / retry flags (see tools/cli_args.h; all rates default 0
// = faults off, in which case the replay is bit-identical to the
// fault-free simulator):
//   --fail-rate P      total per-request failure probability, split evenly
//                      across connect-fail / mid-drop / timeout
//   --fault-connect P  --fault-drop P  --fault-timeout P   per-kind rates
//   --fault-seed N     deterministic fault stream seed (1)
//   --retry-max N      attempts per chunk before skipping (3)
//   --retry-backoff S  base exponential backoff (0.5)
//   --retry-timeout S  player-side no-progress timeout (fault model's T)
//   --resume           byte-range resume of partial downloads
//   --no-downgrade     keep retrying the chosen track, never downgrade
//
// Chunk-size knowledge flags (degraded-metadata operation; the network
// always moves true bytes, only the schemes' size beliefs degrade):
//   --size-knowledge M oracle|declared|noisy|partial (oracle = exact table)
//   --size-err E       noisy: relative error bound in [0, 1) (0.25)
//   --size-miss-rate P partial: per-entry hole probability (0.25)
//   --size-prefix N    partial: size table truncated after N chunks (0=off)
//   --size-correct     learn per-track EWMA corrections from actual sizes
//   --size-alpha A     EWMA weight of the newest observation (0.3)
//   --size-seed N      deterministic knowledge-fault seed (1)
//
// Telemetry flags (observability layer; see DESIGN.md section 8):
//   --trace-jsonl FILE one JSON line per chunk decision, merged across
//                      traces in trace-index order (same-seed runs produce
//                      byte-identical files at any thread count)
//   --trace-durable    crash-safe JSONL: per-line FNV-1a checksums + fsync
//                      on flush (recover torn files with --scan-jsonl)
//   --metrics-json FILE merged counters/histograms, one JSON object keyed
//                      by scheme name
//   --scan-jsonl FILE  standalone recovery mode: scan a checksummed JSONL
//                      file, report torn tails / corrupt interior lines,
//                      truncate a torn tail in place, and exit
//
// Fleet mode (fleet-scale workloads; see DESIGN.md section 9). --fleet
// replaces the per-trace sweep with the fleet driver: sessions arrive over
// time, pick a title by Zipf popularity and a scheme from the --scheme list
// (uniform class mix), and stream through per-title edge-cache shards.
// Flags: --fleet-sessions, --fleet-titles, --fleet-alpha,
// --fleet-title-duration, --fleet-rate, --fleet-horizon,
// --fleet-arrival poisson|flash (+ --fleet-burst-start/-duration/-mult),
// --fleet-cache-mb (0 = origin-only control arm), --fleet-threads,
// --fleet-seed, --fleet-full-watch, --fleet-report FILE. See
// tools/cli_args.h for defaults.
//
// CDN hierarchy (fleet mode; DESIGN.md section 12): --fleet-cdn enables
// the edge -> regional -> origin tiers with request coalescing
// (--fleet-cdn-no-coalesce for the control arm), regional fault domains
// (--fleet-cdn-nodes, --fleet-outages, --fleet-outage-duration), origin
// brownouts (--fleet-brownout-start/-duration/-rate/-capacity), and load
// shedding (--fleet-shed-capacity). All faults are seeded
// (--fleet-cdn-seed): output stays byte-identical at any thread count and
// across kill/resume, even mid-brownout.
//
// In-situ A/B experiments (fleet mode; DESIGN.md section 13): --ab-arms
// "CAVA,RobustMPC,BOLA-E (peak)" assigns arriving sessions to one arm per
// named scheme by seeded stratified randomization (balanced within trace
// class x popularity decile) while every arm shares the same delivery path.
// The run is scored under the pluggable QoE-model suite and analyzed with
// Welch / Mann-Whitney tests, seeded bootstrap CIs, and one
// Benjamini-Hochberg family across every (metric, pair, test) hypothesis.
// Flags: --ab-seed, --ab-strata, --ab-alpha, --ab-boot, --ab-boot-seed,
// --ab-ci percentile|bca, --ab-report FILE (ab_report.json). The report is
// byte-identical at any --fleet-threads value.
//
// Learned ABR (src/learn; DESIGN.md section 14): --scheme learned (or a
// "learned" entry in --ab-arms) serves a policy trained offline by
// abrtrain. --policy FILE names the serialized VBRPOLICY file; it is loaded
// and validated once (field-named PolicyError on damage) and shared,
// immutable, across all worker threads, so fleet output stays
// byte-identical at any --fleet-threads value.
//
// Crash safety (fleet mode; DESIGN.md section 11): --checkpoint FILE,
// --checkpoint-every N, --resume (resume from FILE when it exists),
// --fleet-kill-after N (cooperative chaos kill: final checkpoint + exit
// code 3), --fleet-throttle-us N (stretch wall time so an external SIGKILL
// can land), --fleet-watchdog-decisions / --fleet-watchdog-sim-s
// (per-session runaway budgets, counted in the report). A killed or
// SIGKILLed run resumed with the same flags produces a report and
// telemetry byte-identical to an uninterrupted run.
//
// Execution engine (DESIGN.md section 15): --fleet-engine event|stepped
// picks how run_fleet executes sessions. "stepped" (default) runs each
// session to completion on a worker; "event" schedules every session's
// next chunk decision on one shared-virtual-time timeline — 100k+
// sessions in flight, byte-identical output, v4 checkpoints whose
// --checkpoint-every counts EVENTS instead of sessions. --fleet-stream-agg
// (event engine only, no checkpointing) folds each completed session into
// the aggregates immediately and drops the per-session record, keeping
// memory constant in fleet size.
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <system_error>

#include "cli_args.h"
#include "common.h"
#include "exp/ab.h"
#include "fleet/checkpoint.h"
#include "metrics/report.h"
#include "net/trace_io.h"
#include "obs/jsonl_io.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace {

using namespace vbr;

const std::vector<std::string> kSchemes = {
    "CAVA",          "CAVA-p1",          "CAVA-p12",
    "MPC",           "RobustMPC",        "PANDA/CQ max-sum",
    "PANDA/CQ max-min", "BBA-1",         "RBA",
    "BOLA-E (peak)", "BOLA-E (avg)",     "BOLA-E (seg)",
    "learned",
};

/// Scheme factory resolver that also understands "learned" (backed by the
/// --policy file, loaded once and shared across every factory invocation).
class SchemeResolver {
 public:
  explicit SchemeResolver(const tools::CliArgs& args) : args_(args) {}

  sim::SchemeFactory operator()(const std::string& name,
                                video::QualityMetric metric) {
    if (name != "learned") {
      return bench::scheme_factory(name, metric);
    }
    if (!learned_) {
      learned_ = tools::learned_scheme_factory_from_args(args_);
    }
    return learned_;
  }

 private:
  const tools::CliArgs& args_;
  sim::SchemeFactory learned_;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream iss(s);
  std::string part;
  while (std::getline(iss, part, ',')) {
    if (!part.empty()) {
      out.push_back(part);
    }
  }
  return out;
}

video::Genre parse_genre(const std::string& g) {
  if (g == "animation") return video::Genre::kAnimation;
  if (g == "scifi") return video::Genre::kSciFi;
  if (g == "sports") return video::Genre::kSports;
  if (g == "animal") return video::Genre::kAnimal;
  if (g == "nature") return video::Genre::kNature;
  if (g == "action") return video::Genre::kAction;
  throw std::invalid_argument("unknown genre: " + g);
}

/// --fleet mode: sessions arrive over time, draw a title by popularity and
/// a scheme class from the --scheme list, and stream through per-title
/// edge-cache shards. Prints the per-class QoE table + cache report and
/// optionally writes the fleet report JSON.
int run_fleet_mode(const tools::CliArgs& args,
                   const std::vector<net::Trace>& traces,
                   video::QualityMetric metric, const net::FaultConfig& fault,
                   const sim::RetryPolicy& retry,
                   const video::SizeKnowledgeConfig& size_knowledge,
                   bool degraded_sizes) {
  fleet::FleetSpec spec = tools::fleet_spec_from_args(args);
  spec.metric = metric;
  spec.session.request_rtt_s = args.get_double("rtt", 0.0);
  const bool ab_mode = args.has("ab-arms");
  SchemeResolver resolve(args);
  auto make_class = [&](const std::string& name) {
    fleet::FleetClientClass cls;
    cls.label = name;
    cls.make_scheme = resolve(name, metric);
    cls.fault = fault;
    cls.retry = retry;
    if (degraded_sizes) {
      cls.make_size_provider = [size_knowledge] {
        return video::make_size_provider(size_knowledge);
      };
    }
    return cls;
  };
  if (ab_mode) {
    // A/B mode: the arms take over the class slots; assignment is seeded
    // stratified randomization inside run_fleet (FleetExperimentConfig).
    for (const std::string& name : split_csv(args.get("ab-arms", ""))) {
      spec.experiment.arms.push_back(make_class(name));
    }
    spec.experiment.seed = args.get_size("ab-seed", spec.experiment.seed);
    spec.experiment.trace_strata =
        args.get_size("ab-strata", spec.experiment.trace_strata);
  } else {
    for (const std::string& name : split_csv(args.get("scheme", "CAVA"))) {
      spec.classes.push_back(make_class(name));
    }
  }
  spec.traces = traces;

  std::unique_ptr<obs::TraceSink> trace_sink;
  if (args.has("trace-jsonl")) {
    const std::string path = args.get("trace-jsonl", "trace.jsonl");
    if (args.has("trace-durable")) {
      trace_sink = std::make_unique<obs::DurableJsonlTraceSink>(path);
    } else {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(path);
    }
    spec.trace = trace_sink.get();
  }
  obs::MetricsRegistry registry;
  if (args.has("metrics-json")) {
    spec.metrics = &registry;
  }

  fleet::FleetResult r;
  try {
    r = fleet::run_fleet(spec);
  } catch (const fleet::FleetKilled& k) {
    // The chaos kill is a cooperative crash: the final checkpoint is on
    // disk (when --checkpoint is set) and a --resume rerun finishes the
    // fleet to byte-identical output. Distinct exit code so soak loops can
    // tell "killed as scheduled" from real failures.
    std::fprintf(stderr, "vbrsim: %s\n", k.what());
    return 3;
  }

  std::printf("fleet: %zu sessions over %zu titles (zipf %.2f) | %zu traces "
              "| %s arrivals\n",
              r.sessions.size(), spec.catalog.num_titles,
              spec.catalog.zipf_alpha, traces.size(),
              spec.arrivals.kind == fleet::ArrivalKind::kFlashCrowd
                  ? "flash-crowd"
                  : "poisson");
  std::printf("%-18s %8s %8s %8s %8s %9s %9s %8s\n", "class", "sessions",
              "qual", "Q4qual", "low%", "rebuf(s)", "start(s)", "MB");
  for (const fleet::FleetSchemeReport& c : r.per_class) {
    std::printf("%-18s %8zu %8.1f %8.1f %8.1f %9.2f %9.2f %8.1f\n",
                c.label.c_str(), c.sessions, c.mean_all_quality,
                c.mean_q4_quality, c.mean_low_quality_pct, c.mean_rebuffer_s,
                c.mean_startup_delay_s, c.mean_data_usage_mb);
  }
  if (r.cache_enabled) {
    std::printf("cache: hit ratio %.3f (byte %.3f) | edge %.1f MB, origin "
                "%.1f MB | evictions %zu\n",
                r.cache.hit_ratio(), r.cache.byte_hit_ratio(),
                r.edge_hit_bits / 8e6, r.origin_bits / 8e6,
                static_cast<std::size_t>(r.cache.evictions));
  } else {
    std::printf("cache: disabled | origin %.1f MB\n", r.origin_bits / 8e6);
  }
  if (r.cdn_enabled) {
    std::printf("cdn: edge %llu, regional %llu, origin %llu of %llu requests "
                "| coalesced %llu, shed %llu, failovers %llu, brownout %llu "
                "| upstream ratio %.3f\n",
                static_cast<unsigned long long>(r.cdn.edge_hits),
                static_cast<unsigned long long>(r.cdn.regional_hits),
                static_cast<unsigned long long>(r.cdn.origin_fetches),
                static_cast<unsigned long long>(r.cdn.client_requests),
                static_cast<unsigned long long>(r.cdn.coalesced),
                static_cast<unsigned long long>(r.cdn.shed),
                static_cast<unsigned long long>(r.cdn.failovers),
                static_cast<unsigned long long>(r.cdn.brownout_fetches),
                r.upstream_fetch_ratio);
  }
  std::printf("fairness: jain(quality) %.3f, jain(bits) %.3f\n",
              r.jain_quality, r.jain_bits);
  if (r.watchdog_aborted_sessions > 0) {
    std::printf("watchdog: %llu sessions aborted at budget\n",
                static_cast<unsigned long long>(r.watchdog_aborted_sessions));
  }

  if (ab_mode) {
    const exp::AbAnalysisConfig ab_cfg =
        tools::ab_analysis_config_from_args(args);
    const exp::AbReport ab = exp::analyze_ab(r, ab_cfg);
    std::printf("ab: %zu arms x %zu metrics = %zu hypotheses | BH alpha "
                "%.3g | %zu strata (seed %llu)\n",
                ab.arm_labels.size(), ab.metric_names.size(), ab.hypotheses,
                ab.alpha, ab.strata.size(),
                static_cast<unsigned long long>(spec.experiment.seed));
    bool any = false;
    for (const exp::AbMetricReport& mr : ab.metrics) {
      for (const exp::AbPairTest& pt : mr.pairs) {
        if (!pt.significant) {
          continue;
        }
        any = true;
        std::printf("ab: %-22s %s vs %s: diff %+.3f [%+.3f, %+.3f] | "
                    "welch p %.2e (adj %.2e), mwu p %.2e (adj %.2e)\n",
                    mr.metric.c_str(), ab.arm_labels[pt.arm_a].c_str(),
                    ab.arm_labels[pt.arm_b].c_str(), pt.diff.point,
                    pt.diff.lo, pt.diff.hi, pt.welch.p, pt.welch_p_adj,
                    pt.mwu.p, pt.mwu_p_adj);
      }
    }
    if (!any) {
      std::printf("ab: no significant pairs after BH correction\n");
    }
    if (args.has("ab-report")) {
      const std::string path = args.get("ab-report", "ab_report.json");
      errno = 0;
      std::ofstream ab_out(path, std::ios::out | std::ios::trunc);
      if (!ab_out) {
        throw std::system_error(errno != 0 ? errno : EIO,
                                std::generic_category(),
                                "cannot open '" + path + "'");
      }
      ab.write_json(ab_out);
    }
  }

  if (args.has("fleet-report")) {
    const std::string path = args.get("fleet-report", "fleet-report.json");
    errno = 0;
    std::ofstream report(path, std::ios::out | std::ios::trunc);
    if (!report) {
      throw std::system_error(errno != 0 ? errno : EIO,
                              std::generic_category(),
                              "cannot open '" + path + "'");
    }
    r.write_json(report);
  }
  if (spec.metrics != nullptr) {
    const std::string path = args.get("metrics-json", "metrics.json");
    errno = 0;
    std::ofstream metrics_out(path, std::ios::out | std::ios::trunc);
    if (!metrics_out) {
      throw std::system_error(errno != 0 ? errno : EIO,
                              std::generic_category(),
                              "cannot open '" + path + "'");
    }
    registry.write_json(metrics_out);
    metrics_out << "\n";
  }
  if (trace_sink) {
    trace_sink->flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::set<std::string> known = {
        "scheme", "title",  "genre",  "codec",  "chunk",        "cap",
        "duration", "seed", "traces", "trace-dir", "count",     "metric",
        "rtt",    "abandon", "csv",   "fault-csv", "list-schemes", "help",
        "scan-jsonl"};
    known.insert(tools::fault_flag_names().begin(),
                 tools::fault_flag_names().end());
    known.insert(tools::size_knowledge_flag_names().begin(),
                 tools::size_knowledge_flag_names().end());
    known.insert(tools::telemetry_flag_names().begin(),
                 tools::telemetry_flag_names().end());
    known.insert(tools::fleet_flag_names().begin(),
                 tools::fleet_flag_names().end());
    known.insert(tools::ab_flag_names().begin(),
                 tools::ab_flag_names().end());
    known.insert(tools::learned_flag_names().begin(),
                 tools::learned_flag_names().end());
    const tools::CliArgs args(argc, argv, known);

    if (args.has("help")) {
      std::printf("see the header of tools/vbrsim.cpp for flag docs\n");
      return 0;
    }
    if (args.has("list-schemes")) {
      for (const std::string& s : kSchemes) {
        std::printf("%s\n", s.c_str());
      }
      return 0;
    }
    if (args.has("scan-jsonl")) {
      // Standalone recovery: truncate a torn tail (the crash signature),
      // report interior corruption loudly, exit 0 only on a clean file.
      const std::string path = args.get("scan-jsonl", "");
      if (path.empty()) {
        std::fprintf(stderr, "vbrsim: --scan-jsonl needs a file path\n");
        return 1;
      }
      const obs::JsonlScanReport rep = obs::recover_checksummed_jsonl(path);
      std::printf("scan %s: %llu lines, %llu valid\n", path.c_str(),
                  static_cast<unsigned long long>(rep.total_lines),
                  static_cast<unsigned long long>(rep.valid_lines));
      if (rep.torn_tail) {
        std::printf("torn tail truncated; file now %llu bytes\n",
                    static_cast<unsigned long long>(rep.keep_bytes));
      }
      for (const std::uint64_t ln : rep.corrupt_interior_lines) {
        std::fprintf(stderr,
                     "vbrsim: CORRUPT interior line %llu (checksum "
                     "mismatch) — kept in place, inspect by hand\n",
                     static_cast<unsigned long long>(ln));
      }
      return rep.corrupt_interior_lines.empty() ? 0 : 2;
    }

    // Video.
    const video::Video v = video::make_video(
        args.get("title", "ED"), parse_genre(args.get("genre", "animation")),
        args.get("codec", "h264") == "h265" ? video::Codec::kH265
                                            : video::Codec::kH264,
        args.get_double("chunk", 2.0), args.get_double("cap", 2.0),
        args.get_size("seed", 42), args.get_double("duration", 600.0));

    // Traces.
    const std::string kind = args.get("traces", "lte");
    std::vector<net::Trace> traces;
    if (args.has("trace-dir")) {
      std::vector<std::string> paths;
      for (const auto& entry : std::filesystem::directory_iterator(
               args.get("trace-dir", "."))) {
        if (entry.path().extension() == ".trace") {
          paths.push_back(entry.path().string());
        }
      }
      if (paths.empty()) {
        std::fprintf(stderr, "no .trace files in %s\n",
                     args.get("trace-dir", ".").c_str());
        return 1;
      }
      traces = net::read_trace_files(paths);
    } else if (kind == "lte") {
      traces = bench::lte_traces(args.get_size("count", 50));
    } else if (kind == "fcc") {
      traces = bench::fcc_traces(args.get_size("count", 50));
    } else {
      std::fprintf(stderr, "unknown trace kind %s\n", kind.c_str());
      return 1;
    }

    const std::string metric_name =
        args.get("metric", kind == "fcc" ? "tv" : "phone");
    const video::QualityMetric metric =
        metric_name == "tv" ? video::QualityMetric::kVmafTv
                            : video::QualityMetric::kVmafPhone;

    const net::FaultConfig fault = tools::fault_config_from_args(args);
    const sim::RetryPolicy retry = tools::retry_policy_from_args(args);
    const bool faults_on = fault.any();
    const video::SizeKnowledgeConfig size_knowledge =
        tools::size_knowledge_config_from_args(args);
    const bool degraded_sizes =
        size_knowledge.mode != video::SizeKnowledge::kOracle ||
        size_knowledge.online_correction;

    if (args.has("ab-arms") && !args.has("fleet")) {
      throw std::invalid_argument(
          "--ab-arms needs --fleet (A/B experiments run on the fleet "
          "driver)");
    }
    if (args.has("fleet")) {
      return run_fleet_mode(args, traces, metric, fault, retry,
                            size_knowledge, degraded_sizes);
    }

    std::printf("video %s: %zu tracks, %zu chunks of %.1f s | %zu traces "
                "(%s) | metric VMAF-%s\n",
                v.name().c_str(), v.num_tracks(), v.num_chunks(),
                v.chunk_duration_s(), traces.size(), kind.c_str(),
                metric_name.c_str());
    if (degraded_sizes) {
      std::printf("size knowledge: %s (seed %llu)\n",
                  video::make_size_provider(size_knowledge)->name().c_str(),
                  static_cast<unsigned long long>(size_knowledge.seed));
    }
    if (faults_on) {
      std::printf("faults: connect %.3f, drop %.3f, timeout %.3f (seed "
                  "%llu) | retry max %zu, backoff %.2fs%s%s\n",
                  fault.connect_failure_prob, fault.mid_drop_prob,
                  fault.timeout_prob,
                  static_cast<unsigned long long>(fault.seed),
                  retry.max_attempts, retry.backoff_base_s,
                  retry.resume_partial ? ", resume" : "",
                  retry.downgrade_on_failure ? ", downgrade" : "");
      std::printf("%-18s %8s %8s %8s %9s %8s %8s %8s %8s\n", "scheme",
                  "Q4qual", "Q13qual", "low%", "rebuf(s)", "change", "MB",
                  "skip%", "att/chk");
    } else {
      std::printf("%-18s %8s %8s %8s %9s %8s %8s\n", "scheme", "Q4qual",
                  "Q13qual", "low%", "rebuf(s)", "change", "MB");
    }

    std::ofstream csv;
    bool csv_header = true;
    if (args.has("csv")) {
      csv.open(args.get("csv", "results.csv"), std::ios::app);
      if (!csv) {
        std::fprintf(stderr, "cannot open CSV output\n");
        return 1;
      }
      csv_header = csv.tellp() == 0;
    }
    // Telemetry sinks. JsonlTraceSink throws a std::system_error carrying
    // errno for unopenable paths, surfaced via the catch below.
    std::unique_ptr<obs::JsonlTraceSink> trace_sink;
    if (args.has("trace-jsonl")) {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(
          args.get("trace-jsonl", "trace.jsonl"));
    }
    std::ofstream metrics_out;
    if (args.has("metrics-json")) {
      const std::string path = args.get("metrics-json", "metrics.json");
      errno = 0;
      metrics_out.open(path, std::ios::out | std::ios::trunc);
      if (!metrics_out) {
        throw std::system_error(errno != 0 ? errno : EIO,
                                std::generic_category(),
                                "cannot open '" + path + "'");
      }
    }

    std::ofstream fault_csv;
    bool fault_header = true;
    if (args.has("fault-csv")) {
      fault_csv.open(args.get("fault-csv", "faults.csv"), std::ios::app);
      if (!fault_csv) {
        std::fprintf(stderr, "cannot open fault CSV output\n");
        return 1;
      }
      fault_header = fault_csv.tellp() == 0;
    }

    bool first_scheme = true;
    if (metrics_out.is_open()) {
      metrics_out << "{";
    }
    SchemeResolver resolve(args);
    for (const std::string& name :
         split_csv(args.get("scheme", "CAVA"))) {
      obs::MetricsRegistry registry;
      sim::ExperimentSpec spec;
      spec.video = &v;
      spec.traces = traces;
      spec.make_scheme = resolve(name, metric);
      spec.metric = metric;
      spec.session.request_rtt_s = args.get_double("rtt", 0.0);
      spec.session.enable_abandonment = args.has("abandon");
      spec.session.fault = fault;
      spec.session.retry = retry;
      if (degraded_sizes) {
        spec.make_size_provider = [&size_knowledge] {
          return video::make_size_provider(size_knowledge);
        };
      }
      if (trace_sink) {
        spec.trace = trace_sink.get();
      }
      if (metrics_out.is_open()) {
        spec.metrics = &registry;
      }
      const sim::ExperimentResult r = sim::run_experiment(spec);
      if (metrics_out.is_open()) {
        if (!first_scheme) {
          metrics_out << ",";
        }
        metrics_out << "\"" << name << "\":";
        registry.write_json(metrics_out);
        first_scheme = false;
      }
      if (faults_on) {
        std::printf("%-18s %8.1f %8.1f %8.1f %9.2f %8.2f %8.1f %8.2f "
                    "%8.2f\n",
                    name.c_str(), r.mean_q4_quality, r.mean_q13_quality,
                    r.mean_low_quality_pct, r.mean_rebuffer_s,
                    r.mean_quality_change, r.mean_data_usage_mb,
                    r.mean_skipped_pct, r.mean_attempts_per_chunk);
      } else {
        std::printf("%-18s %8.1f %8.1f %8.1f %9.2f %8.2f %8.1f\n",
                    name.c_str(), r.mean_q4_quality, r.mean_q13_quality,
                    r.mean_low_quality_pct, r.mean_rebuffer_s,
                    r.mean_quality_change, r.mean_data_usage_mb);
      }
      if (csv.is_open()) {
        metrics::write_qoe_csv(csv, name, r.per_trace, csv_header);
        csv_header = false;
      }
      if (fault_csv.is_open()) {
        metrics::write_fault_csv(fault_csv, name, r.per_trace_faults,
                                 fault_header);
        fault_header = false;
      }
    }
    if (metrics_out.is_open()) {
      metrics_out << "}\n";
    }
    if (trace_sink) {
      trace_sink->flush();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vbrsim: %s\n", e.what());
    return 1;
  }
}
