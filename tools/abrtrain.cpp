// abrtrain — offline imitation trainer for the learned ABR schemes.
//
// Pipeline (DESIGN.md section 14): generate teacher rollouts (an MPC class
// with oracle size knowledge) through the fleet driver into a durable
// checksummed JSONL decision trace, replay the trace through the shared
// feature/state layer, fit the tabular and MLP policies with seeded
// counter-based determinism, and write both as VBRPOLICY files. The same
// rollout file + --train-seed produces byte-identical policy files on every
// run (CI's learn-smoke job retrains and cmp's).
//
//   abrtrain --rollouts rollouts.jsonl --out-tabular tab.vbrp
//            --out-mlp mlp.vbrp --fleet-sessions 50     (one command line)
//
// Flags (defaults in parentheses):
//   --rollouts FILE     teacher rollout JSONL; generated through run_fleet
//                       when missing (or always with --generate)
//   --generate          regenerate the rollout file even if it exists
//   --teacher NAME      teacher scheme for rollouts (MPC)
//   --traces KIND       lte|fcc synthetic trace corpus (lte)
//   --count N           number of synthetic traces (50)
//   --metric M          phone|tv quality metric for the teacher (phone)
//   --out-tabular FILE  tabular policy output ("" = skip)
//   --out-mlp FILE      MLP policy output ("" = skip)
//   --id TOKEN          policy id stamped into files + telemetry (teacher
//                       name lowercased + "-imitate")
//   --policy-version N  policy version number (1)
//   --train-seed N      trainer seed: weight init + epoch shuffles (1)
//   --hidden N          MLP hidden width (16)
//   --epochs N          MLP SGD epochs (40)
//   --lr F              MLP initial learning rate (0.05)
//   --holdout-k K       sessions with id % K == 0 are held out (5; 0 = none)
//   --lookahead N       feature window: upcoming chunks per track (5)
//   --buffer-bins N     tabular buffer-level bins (16)
//   --bw-bins N         log-bandwidth bins: MLP feature resolution (12)
//   --margin-bins N     tabular bandwidth-margin bins (4)
//   --deficit-bins N    tabular deficit-absorption bins (6)
//   --min-agreement F   exit 4 unless held-out tabular teacher agreement
//                       >= F (0 = report only)
//
// Fleet workload flags (--fleet-sessions, --fleet-titles, --fleet-rate,
// --fleet-arrival, ... — see tools/cli_args.h) shape the rollout run; pass
// the same values when regenerating to reproduce a corpus bit-exactly.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cli_args.h"
#include "common.h"
#include "fleet/catalog.h"
#include "fleet/fleet.h"
#include "learn/policy.h"
#include "learn/trainer.h"
#include "obs/jsonl_io.h"

namespace {

using namespace vbr;

/// Runs the teacher fleet and writes the durable rollout trace.
void generate_rollouts(const tools::CliArgs& args, const std::string& path,
                       const std::vector<net::Trace>& traces,
                       video::QualityMetric metric) {
  fleet::FleetSpec spec = tools::fleet_spec_from_args(args);
  spec.metric = metric;
  fleet::FleetClientClass teacher;
  teacher.label = args.get("teacher", "MPC");
  teacher.make_scheme = bench::scheme_factory(teacher.label, metric);
  spec.classes.push_back(teacher);
  spec.traces = traces;
  obs::DurableJsonlTraceSink sink(path);
  spec.trace = &sink;
  const fleet::FleetResult r = fleet::run_fleet(spec);
  sink.flush();
  std::printf("rollouts: %zu sessions -> %llu decisions in %s\n",
              r.sessions.size(),
              static_cast<unsigned long long>(sink.lines_written()),
              path.c_str());
}

/// Reads a rollout trace: checksummed durable lines (preferred) or plain
/// JSONL. Throws with the line number on damage.
std::vector<obs::DecisionEvent> read_rollouts(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("abrtrain: cannot open rollouts '" + path + "'");
  }
  std::vector<obs::DecisionEvent> events;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string_view payload;
    if (!obs::verify_checksummed_line(line, payload)) {
      payload = line;  // Plain (non-durable) JSONL line.
    }
    try {
      events.push_back(obs::parse_jsonl(payload));
    } catch (const std::exception& e) {
      throw std::runtime_error("abrtrain: " + path + ":" +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  return events;
}

void report(const char* label, const learn::Policy& policy,
            const learn::DatasetSplit& split) {
  std::printf("%s: train agreement %.4f (%zu examples)", label,
              learn::evaluate_agreement(policy, split.train),
              split.train.examples.size());
  if (!split.holdout.examples.empty()) {
    std::printf(" | held-out agreement %.4f (%zu examples)",
                learn::evaluate_agreement(policy, split.holdout),
                split.holdout.examples.size());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::set<std::string> known = {
        "rollouts", "generate",       "teacher",   "traces",
        "count",    "metric",         "out-tabular", "out-mlp",
        "id",       "policy-version", "train-seed", "hidden",
        "epochs",   "lr",             "holdout-k", "lookahead",
        "buffer-bins", "bw-bins",     "margin-bins", "deficit-bins",
        "min-agreement", "help"};
    known.insert(tools::fleet_flag_names().begin(),
                 tools::fleet_flag_names().end());
    const tools::CliArgs args(argc, argv, known);
    if (args.has("help")) {
      std::printf("see the header of tools/abrtrain.cpp for flag docs\n");
      return 0;
    }

    const std::string rollouts = args.get("rollouts", "rollouts.jsonl");
    const std::string kind = args.get("traces", "lte");
    std::vector<net::Trace> traces;
    if (kind == "lte") {
      traces = bench::lte_traces(args.get_size("count", 50));
    } else if (kind == "fcc") {
      traces = bench::fcc_traces(args.get_size("count", 50));
    } else {
      std::fprintf(stderr, "abrtrain: unknown trace kind %s\n", kind.c_str());
      return 1;
    }
    const video::QualityMetric metric =
        args.get("metric", "phone") == "tv" ? video::QualityMetric::kVmafTv
                                            : video::QualityMetric::kVmafPhone;

    if (args.has("generate") || !std::filesystem::exists(rollouts)) {
      generate_rollouts(args, rollouts, traces, metric);
    }
    const std::vector<obs::DecisionEvent> events = read_rollouts(rollouts);
    if (events.empty()) {
      std::fprintf(stderr, "abrtrain: rollout file has no events\n");
      return 1;
    }

    // The catalog the rollouts were recorded against: rebuilt from the same
    // fleet flags, so event.edge->title resolves to the exact manifest.
    const fleet::FleetSpec spec = tools::fleet_spec_from_args(args);
    const fleet::Catalog catalog(spec.catalog);

    learn::FeatureConfig cfg;
    cfg.num_tracks = catalog.title(0).num_tracks();
    cfg.lookahead = args.get_size("lookahead", cfg.lookahead);
    cfg.buffer_bins = args.get_size("buffer-bins", cfg.buffer_bins);
    cfg.bandwidth_bins = args.get_size("bw-bins", cfg.bandwidth_bins);
    cfg.margin_bins = args.get_size("margin-bins", cfg.margin_bins);
    cfg.deficit_bins = args.get_size("deficit-bins", cfg.deficit_bins);
    cfg.validate();

    const learn::VideoLookup lookup =
        [&catalog](const obs::DecisionEvent& ev) -> const video::Video* {
      if (!ev.edge.has_value() || ev.edge->title >= catalog.num_titles()) {
        return nullptr;
      }
      return &catalog.title(static_cast<std::size_t>(ev.edge->title));
    };
    const learn::Dataset dataset =
        learn::build_dataset(events, cfg, lookup);
    std::printf("dataset: %zu examples, %zu events dropped\n",
                dataset.examples.size(), dataset.dropped_events);
    if (dataset.examples.empty()) {
      std::fprintf(stderr, "abrtrain: no trainable examples\n");
      return 1;
    }
    const learn::DatasetSplit split =
        learn::split_dataset(dataset, args.get_size("holdout-k", 5));

    learn::TrainerConfig tc;
    tc.seed = args.get_size("train-seed", 1);
    tc.hidden = args.get_size("hidden", tc.hidden);
    tc.epochs = args.get_size("epochs", tc.epochs);
    tc.learning_rate = args.get_double("lr", tc.learning_rate);
    std::string teacher = args.get("teacher", "MPC");
    for (char& c : teacher) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const std::string id = args.get("id", teacher + "-imitate");
    const auto version =
        static_cast<std::uint32_t>(args.get_size("policy-version", 1));

    double tabular_holdout_agreement = -1.0;
    const std::string out_tabular = args.get("out-tabular", "");
    if (!out_tabular.empty()) {
      const learn::Policy tab =
          learn::train_tabular(split.train, cfg, tc, id, version);
      learn::save_policy_file(out_tabular, tab);
      std::printf("wrote %s (%zu states)\n", out_tabular.c_str(),
                  tab.tabular.table.size());
      report("tabular", tab, split);
      tabular_holdout_agreement = learn::evaluate_agreement(
          tab, split.holdout.examples.empty() ? split.train : split.holdout);
    }
    const std::string out_mlp = args.get("out-mlp", "");
    if (!out_mlp.empty()) {
      const learn::Policy mlp =
          learn::train_mlp(split.train, cfg, tc, id, version);
      learn::save_policy_file(out_mlp, mlp);
      std::printf("wrote %s (%zux%zux%zu)\n", out_mlp.c_str(), mlp.mlp.in,
                  mlp.mlp.hidden, mlp.mlp.out);
      report("mlp", mlp, split);
    }

    const double min_agreement = args.get_double("min-agreement", 0.0);
    if (min_agreement > 0.0 && tabular_holdout_agreement >= 0.0 &&
        tabular_holdout_agreement < min_agreement) {
      std::fprintf(stderr,
                   "abrtrain: held-out tabular agreement %.4f below the "
                   "--min-agreement %.4f gate\n",
                   tabular_holdout_agreement, min_agreement);
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abrtrain: %s\n", e.what());
    return 1;
  }
}
