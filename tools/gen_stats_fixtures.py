#!/usr/bin/env python3
"""Regenerates the statistics-oracle fixtures under tests/data/stats/.

Standard library only, by design: the container has no scipy/R, so the
oracle values are produced by an independent numerical method (tanh-free
composite Gauss-Legendre quadrature of the Student-t density after the
x = sqrt(df) * tan(theta) substitution) rather than the continued-fraction
incomplete beta the C++ engine uses. The conventions are the scipy/R ones:

  - welch: scipy.stats.ttest_ind(equal_var=False)
  - mwu:   scipy.stats.mannwhitneyu(alternative='two-sided',
           method='asymptotic')  (continuity correction, tie-corrected sigma)
  - bh:    R p.adjust(method='BH')

Cross-checked against closed forms where they exist (df=1 Cauchy, df=2
elementary, normal limit). Sample values are emitted with %.17g so they
round-trip exactly through strtod.

Usage: python3 tools/gen_stats_fixtures.py [output-dir]
"""
import math
import os
import random
import sys


# ----------------------------------------------------------------------------
# Gauss-Legendre nodes/weights on [-1, 1] (order 40), computed via Newton on
# Legendre polynomials — stdlib only, accurate to ~1e-15.
def legendre_nodes(order):
    nodes, weights = [], []
    for i in range(order):
        x = math.cos(math.pi * (i + 0.75) / (order + 0.5))
        for _ in range(100):
            p0, p1 = 1.0, x
            for k in range(2, order + 1):
                p0, p1 = p1, ((2 * k - 1) * x * p1 - (k - 1) * p0) / k
            dp = order * (x * p1 - p0) / (x * x - 1.0)
            dx = p1 / dp
            x -= dx
            if abs(dx) < 1e-16:
                break
        nodes.append(x)
        weights.append(2.0 / ((1.0 - x * x) * dp * dp))
    return nodes, weights


GL_NODES, GL_WEIGHTS = legendre_nodes(40)


def integrate(f, lo, hi, panels=16):
    total = 0.0
    width = (hi - lo) / panels
    for p in range(panels):
        a = lo + p * width
        mid, half = a + 0.5 * width, 0.5 * width
        total += half * sum(
            w * f(mid + half * x) for x, w in zip(GL_NODES, GL_WEIGHTS))
    return total


def student_t_sf(t, df):
    """P(T > t) by quadrature: x = sqrt(df) tan(theta) maps the tail integral
    to C * integral of cos(theta)^(df-1) over [atan(t/sqrt(df)), pi/2]."""
    if t < 0:
        return 1.0 - student_t_sf(-t, df)
    log_c = (math.lgamma(0.5 * (df + 1)) - math.lgamma(0.5 * df)
             - 0.5 * math.log(df * math.pi))
    theta0 = math.atan(t / math.sqrt(df))
    return math.exp(log_c) * math.sqrt(df) * integrate(
        lambda th: math.cos(th) ** (df - 1.0), theta0, 0.5 * math.pi)


def reg_inc_beta(a, b, x):
    """I_x(a, b) by quadrature of the beta density on [0, x]; needs a >= 1
    (no left-endpoint singularity). b may be 0.5 as long as x < 1."""
    log_b = math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)
    inv_beta = math.exp(-log_b)
    return inv_beta * integrate(
        lambda u: u ** (a - 1.0) * (1.0 - u) ** (b - 1.0), 0.0, x, panels=32)


def normal_sf(z):
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def normal_ppf(p):
    lo, hi = -40.0, 40.0
    for _ in range(400):
        mid = 0.5 * (lo + hi)
        if 1.0 - normal_sf(mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def welch(a, b):
    n1, n2 = len(a), len(b)
    m1, m2 = sum(a) / n1, sum(b) / n2
    v1 = sum((x - m1) ** 2 for x in a) / (n1 - 1)
    v2 = sum((x - m2) ** 2 for x in b) / (n2 - 1)
    se1, se2 = v1 / n1, v2 / n2
    t = (m1 - m2) / math.sqrt(se1 + se2)
    df = (se1 + se2) ** 2 / (se1 ** 2 / (n1 - 1) + se2 ** 2 / (n2 - 1))
    p = min(1.0, 2.0 * student_t_sf(abs(t), df))
    return t, df, p


def average_ranks(xs):
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    rank = [0.0] * len(xs)
    i = 0
    while i < len(xs):
        j = i
        while j + 1 < len(xs) and xs[order[j + 1]] == xs[order[i]]:
            j += 1
        avg = 0.5 * ((i + 1) + (j + 1))
        for k in range(i, j + 1):
            rank[order[k]] = avg
        i = j + 1
    return rank


def mwu(a, b):
    n1, n2 = len(a), len(b)
    combined = list(a) + list(b)
    rank = average_ranks(combined)
    r1 = sum(rank[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    tie = 0.0
    svals = sorted(combined)
    i = 0
    while i < len(svals):
        j = i
        while j + 1 < len(svals) and svals[j + 1] == svals[i]:
            j += 1
        t = j - i + 1
        tie += t ** 3 - t
        i = j + 1
    n = n1 + n2
    sigma2 = (n1 * n2 / 12.0) * ((n + 1) - tie / (n * (n - 1)))
    if sigma2 <= 0:
        return u1, 0.0, 1.0
    z = (max(u1, u2) - n1 * n2 / 2.0 - 0.5) / math.sqrt(sigma2)
    return u1, z, min(1.0, 2.0 * normal_sf(z))


def bh(ps):
    m = len(ps)
    order = sorted(range(m), key=lambda i: -ps[i])
    adj = [0.0] * m
    running = 1.0
    for k, idx in enumerate(order):
        running = min(running, ps[idx] * m / (m - k))
        adj[idx] = running
    return adj


def fmt(x):
    return "%.17g" % x


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "tests", "data", "stats")
    os.makedirs(out_dir, exist_ok=True)

    rng = random.Random(20260807)

    def gauss_sample(n, mu, sd):
        return [mu + sd * rng.gauss(0.0, 1.0) for _ in range(n)]

    cases = []
    cases.append(("normal_equal", gauss_sample(24, 50.0, 8.0),
                  gauss_sample(30, 50.0, 8.0)))
    cases.append(("normal_shift_small", gauss_sample(40, 60.0, 10.0),
                  gauss_sample(40, 63.0, 10.0)))
    cases.append(("normal_shift_large", gauss_sample(25, 40.0, 5.0),
                  gauss_sample(35, 52.0, 9.0)))
    cases.append(("unequal_var", gauss_sample(20, 70.0, 2.0),
                  gauss_sample(50, 70.5, 18.0)))
    cases.append(("small_n", gauss_sample(5, 10.0, 3.0),
                  gauss_sample(7, 13.0, 4.0)))
    cases.append(("skewed_exp",
                  [-5.0 * math.log(rng.random()) for _ in range(30)],
                  [-7.5 * math.log(rng.random()) for _ in range(28)]))
    # Heavy ties: integer-quantized QoE-like scores exercise the tie-corrected
    # MWU variance and average ranks.
    cases.append(("heavy_ties",
                  [float(rng.randint(0, 5)) for _ in range(40)],
                  [float(rng.randint(1, 6)) for _ in range(35)]))
    cases.append(("identical_ties", [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0],
                  [1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 4.0]))

    lines = ["# Generated by tools/gen_stats_fixtures.py -- do not hand-edit."]
    for name, a, b in cases:
        t, df, p = welch(a, b)
        u1, z, mp = mwu(a, b)
        lines.append("case %s" % name)
        lines.append("a %d %s" % (len(a), " ".join(fmt(x) for x in a)))
        lines.append("b %d %s" % (len(b), " ".join(fmt(x) for x in b)))
        lines.append("welch_t %s" % fmt(t))
        lines.append("welch_df %s" % fmt(df))
        lines.append("welch_p %s" % fmt(p))
        lines.append("mwu_u1 %s" % fmt(u1))
        lines.append("mwu_z %s" % fmt(z))
        lines.append("mwu_p %s" % fmt(mp))
    with open(os.path.join(out_dir, "ttest_cases.txt"), "w") as f:
        f.write("\n".join(lines) + "\n")

    bh_sets = [
        ("r_doc_example",
         [0.01, 0.02, 0.03, 0.04, 0.05, 0.99]),
        ("mixed", [0.6, 0.001, 0.25, 0.04, 0.001, 0.9, 0.12, 0.0003]),
        ("all_ones", [1.0, 1.0, 1.0, 1.0]),
        ("single", [0.037]),
        ("ties", [0.05, 0.05, 0.05, 0.2, 0.2, 0.8]),
        ("random", sorted(rng.random() for _ in range(15))),
    ]
    lines = ["# Generated by tools/gen_stats_fixtures.py -- do not hand-edit."]
    for name, ps in bh_sets:
        adj = bh(ps)
        lines.append("case %s" % name)
        lines.append("p %d %s" % (len(ps), " ".join(fmt(x) for x in ps)))
        lines.append("adj %d %s" % (len(adj), " ".join(fmt(x) for x in adj)))
    with open(os.path.join(out_dir, "bh_cases.txt"), "w") as f:
        f.write("\n".join(lines) + "\n")

    lines = ["# Generated by tools/gen_stats_fixtures.py -- do not hand-edit."]
    for t, df in [(0.0, 5.0), (1.0, 1.0), (2.5, 1.0), (1.0, 2.0),
                  (2.0, 2.0), (0.5, 3.7), (1.96, 12.4), (3.2, 29.0),
                  (4.5, 61.5), (-1.3, 8.0), (6.0, 4.2), (2.0, 200.0)]:
        lines.append("tsf %s %s %s" % (fmt(t), fmt(df), fmt(student_t_sf(t, df))))
    for p in [0.001, 0.01, 0.025, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.99,
              0.999]:
        lines.append("ppf %s %s" % (fmt(p), fmt(normal_ppf(p))))
    for a, b, x in [(1.0, 1.0, 0.3), (2.0, 3.0, 0.5), (5.0, 0.5, 0.8),
                    (1.5, 0.5, 0.25), (10.0, 10.0, 0.5), (3.25, 0.5, 0.9)]:
        lines.append("ibeta %s %s %s %s" % (fmt(a), fmt(b), fmt(x),
                                            fmt(reg_inc_beta(a, b, x))))
    with open(os.path.join(out_dir, "special_cases.txt"), "w") as f:
        f.write("\n".join(lines) + "\n")

    print("wrote fixtures to %s" % out_dir)


if __name__ == "__main__":
    main()
