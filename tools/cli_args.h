// Minimal command-line flag parser for the CLI tools: --key value and
// --flag forms, with typed accessors and unknown-flag detection.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace vbr::tools {

class CliArgs {
 public:
  /// Parses argv. Flags are "--name value" or bare "--name"; anything else
  /// is a positional argument. Throws std::invalid_argument on a flag not
  /// in `known`.
  CliArgs(int argc, const char* const* argv,
          const std::set<std::string>& known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vbr::tools
