// Minimal command-line flag parser for the CLI tools: --key value and
// --flag forms, with typed accessors and unknown-flag detection — plus the
// shared fault/retry flag group used by fault-injection sweeps.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "exp/ab.h"
#include "fleet/fleet.h"
#include "net/fault_model.h"
#include "sim/experiment.h"
#include "sim/retry.h"
#include "video/size_provider.h"

namespace vbr::tools {

class CliArgs {
 public:
  /// Parses argv. Flags are "--name value" or bare "--name"; anything else
  /// is a positional argument. Throws std::invalid_argument on a flag not
  /// in `known`.
  CliArgs(int argc, const char* const* argv,
          const std::set<std::string>& known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The fault/retry flag group, for merging into a tool's known-flag set:
///   --fail-rate P        total per-request failure probability, split
///                        evenly across the three fault kinds
///   --fault-connect P    P(hard failure before the first byte)
///   --fault-drop P       P(mid-transfer connection drop)
///   --fault-timeout P    P(response timeout)
///   --fault-seed N       deterministic fault stream seed
///   --retry-max N        attempts per chunk before skipping
///   --retry-backoff S    base backoff delay (exponential, jittered)
///   --retry-timeout S    player-side no-progress timeout
///   --resume             byte-range resume of partial downloads
///   --no-downgrade       disable downgrade-to-lowest on repeated failure
[[nodiscard]] const std::set<std::string>& fault_flag_names();

/// Builds a FaultConfig from the fault flag group (defaults: disabled).
/// --fail-rate is overridden per kind by the specific --fault-* flags.
[[nodiscard]] net::FaultConfig fault_config_from_args(const CliArgs& args);

/// Builds a RetryPolicy from the retry flag group (defaults: sim defaults).
[[nodiscard]] sim::RetryPolicy retry_policy_from_args(const CliArgs& args);

/// The telemetry flag group (observability layer, src/obs):
///   --trace-jsonl FILE   write one JSON line per chunk decision to FILE
///                        (merged in trace-index order; byte-identical for
///                        same-seed runs at any thread count)
///   --trace-durable      crash-safe JSONL: append an FNV-1a checksum to
///                        every line and fsync on flush, so a torn tail is
///                        detectable and recoverable (obs/jsonl_io.h)
///   --metrics-json FILE  write the merged metrics registries as one JSON
///                        object keyed by scheme name
[[nodiscard]] const std::set<std::string>& telemetry_flag_names();

/// The chunk-size knowledge flag group (degraded-metadata operation):
///   --size-knowledge M   oracle | declared | noisy | partial (oracle)
///   --size-err E         noisy: relative error bound in [0, 1)
///   --size-miss-rate P   partial: per-entry hole probability in [0, 1]
///   --size-prefix N      partial: table truncated after N chunks (0 = off)
///   --size-correct       learn per-track EWMA corrections from actual sizes
///   --size-alpha A       EWMA weight of the newest observation, (0, 1]
///   --size-seed N        deterministic knowledge-fault seed
[[nodiscard]] const std::set<std::string>& size_knowledge_flag_names();

/// Builds a SizeKnowledgeConfig from the size-knowledge flag group
/// (defaults: oracle, i.e. exact sizes). Validates before returning.
[[nodiscard]] video::SizeKnowledgeConfig size_knowledge_config_from_args(
    const CliArgs& args);

/// The fleet flag group (fleet-scale workloads, src/fleet):
///   --fleet                 run the fleet driver instead of per-trace sweeps
///   --fleet-sessions N      cap on arriving sessions (200)
///   --fleet-titles N        catalog size (16)
///   --fleet-alpha A         Zipf popularity exponent (0.8)
///   --fleet-title-duration S  per-title length in seconds (120)
///   --fleet-rate R          mean arrivals per second (0.5)
///   --fleet-horizon S       arrival horizon in seconds (300)
///   --fleet-arrival K       poisson | flash (poisson)
///   --fleet-burst-start S   flash: burst window start (60)
///   --fleet-burst-duration S  flash: burst window length (30)
///   --fleet-burst-mult M    flash: rate multiplier inside the window (8)
///   --fleet-cache-mb MB     total edge-cache capacity in megabytes (1000);
///                           0 disables the cache model (origin-only arm)
///   --fleet-threads N       worker threads (0 = hardware concurrency)
///   --fleet-seed N          master workload seed (7)
///   --fleet-full-watch P    probability a viewer watches to the end (0.6)
///   --fleet-report FILE     write the fleet report JSON to FILE
///
/// Crash safety (fleet/checkpoint.h):
///   --checkpoint FILE       checkpoint the fleet run to FILE (atomic
///                           temp+rename writes at session-boundary barriers)
///   --checkpoint-every N    completed sessions between checkpoints (64);
///                           0 = only the final kill checkpoint
///   --resume                with --checkpoint: resume from FILE when it
///                           exists (absent = fresh run; stale/corrupt =
///                           named CheckpointError). Keeps its per-request
///                           byte-range-resume meaning too.
///   --fleet-kill-after N    chaos: cooperative kill after N completed
///                           sessions — final checkpoint, then exit code 3
///   --fleet-throttle-us N   chaos: sleep N us per completed session so an
///                           external SIGKILL can land mid-run (no effect
///                           on any output byte)
///   --fleet-watchdog-decisions N   per-session decision budget (0 = off)
///   --fleet-watchdog-sim-s S       per-session simulated-time budget
///                                  (0 = off); aborted sessions are counted
///                                  in the report, never hidden
///
/// CDN hierarchy + overload protection (fleet/cdn.h):
///   --fleet-cdn               enable the edge -> regional -> origin tiers
///   --fleet-cdn-nodes N       regional fault domains (2)
///   --fleet-cdn-regional-mb MB  total regional capacity in megabytes (4000)
///   --fleet-cdn-backhaul-mbps M edge->upstream rate sizing coalescing
///                             windows, in Mbit/s (50)
///   --fleet-cdn-no-coalesce   disable request coalescing (control arm)
///   --fleet-cdn-seed N        outage-schedule + shed-draw seed (11)
///   --fleet-brownout-start S  origin brownout window start (0)
///   --fleet-brownout-duration S  window length; 0 = no brownout (0)
///   --fleet-brownout-rate F   origin rate scale inside the window (0.5)
///   --fleet-brownout-capacity F  origin capacity scale in the window (0.5)
///   --fleet-shed-capacity N   origin session capacity; 0 = shedding off (0)
///   --fleet-outages N         outage windows per regional node (0)
///   --fleet-outage-duration S length of each node outage (30)
[[nodiscard]] const std::set<std::string>& fleet_flag_names();

/// Builds the workload part of a FleetSpec (catalog, arrivals, cache,
/// watch model, threads, seed) from the fleet flag group. Client classes,
/// traces, and sinks stay with the caller. Validates before returning.
[[nodiscard]] fleet::FleetSpec fleet_spec_from_args(const CliArgs& args);

/// The in-situ A/B experiment flag group (fleet mode; src/exp):
///   --ab-arms LIST       comma-separated scheme names, one arm each; the
///                        arms replace the --scheme class list and share
///                        the delivery path (in-situ). Enables A/B mode.
///   --ab-seed N          assignment randomization seed (1001), independent
///                        of --fleet-seed so the workload is identical
///                        across re-randomizations
///   --ab-strata N        trace bandwidth-rank buckets; stratum count is
///                        N x 10 popularity deciles (4)
///   --ab-alpha A         BH false-discovery level on adjusted p (0.05)
///   --ab-boot N          bootstrap resamples per CI (2000)
///   --ab-boot-seed N     bootstrap counter seed (0x5eedab00)
///   --ab-ci KIND         percentile | bca (bca)
///   --ab-report FILE     write ab_report.json to FILE
[[nodiscard]] const std::set<std::string>& ab_flag_names();

/// Builds the analysis config from the A/B flag group. Validates before
/// returning (throws std::invalid_argument with the flag named).
[[nodiscard]] exp::AbAnalysisConfig ab_analysis_config_from_args(
    const CliArgs& args);

/// The learned-ABR flag group (src/learn):
///   --policy FILE   serialized VBRPOLICY file backing the "learned" scheme
///                   name in --scheme / --ab-arms (train one with abrtrain)
[[nodiscard]] const std::set<std::string>& learned_flag_names();

/// Loads --policy once and returns a factory whose LearnedSchemes all share
/// the immutable policy (safe across fleet worker threads). Throws
/// std::invalid_argument when --policy is missing and learn::PolicyError
/// (field-named) when the file is malformed.
[[nodiscard]] sim::SchemeFactory learned_scheme_factory_from_args(
    const CliArgs& args);

}  // namespace vbr::tools
