file(REMOVE_RECURSE
  "CMakeFiles/custom_scheme.dir/custom_scheme.cpp.o"
  "CMakeFiles/custom_scheme.dir/custom_scheme.cpp.o.d"
  "custom_scheme"
  "custom_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
