# Empty compiler generated dependencies file for manifest_roundtrip.
# This may be replaced when dependencies are built.
