file(REMOVE_RECURSE
  "CMakeFiles/manifest_roundtrip.dir/manifest_roundtrip.cpp.o"
  "CMakeFiles/manifest_roundtrip.dir/manifest_roundtrip.cpp.o.d"
  "manifest_roundtrip"
  "manifest_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
