file(REMOVE_RECURSE
  "CMakeFiles/scheme_faceoff.dir/scheme_faceoff.cpp.o"
  "CMakeFiles/scheme_faceoff.dir/scheme_faceoff.cpp.o.d"
  "scheme_faceoff"
  "scheme_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
