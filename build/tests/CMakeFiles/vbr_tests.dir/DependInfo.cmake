
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abandonment.cpp" "tests/CMakeFiles/vbr_tests.dir/test_abandonment.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_abandonment.cpp.o.d"
  "/root/repo/tests/test_bandwidth_estimator.cpp" "tests/CMakeFiles/vbr_tests.dir/test_bandwidth_estimator.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_bandwidth_estimator.cpp.o.d"
  "/root/repo/tests/test_bba_rba.cpp" "tests/CMakeFiles/vbr_tests.dir/test_bba_rba.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_bba_rba.cpp.o.d"
  "/root/repo/tests/test_bola.cpp" "tests/CMakeFiles/vbr_tests.dir/test_bola.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_bola.cpp.o.d"
  "/root/repo/tests/test_buffer.cpp" "tests/CMakeFiles/vbr_tests.dir/test_buffer.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_buffer.cpp.o.d"
  "/root/repo/tests/test_cava.cpp" "tests/CMakeFiles/vbr_tests.dir/test_cava.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_cava.cpp.o.d"
  "/root/repo/tests/test_cli_args.cpp" "tests/CMakeFiles/vbr_tests.dir/test_cli_args.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_cli_args.cpp.o.d"
  "/root/repo/tests/test_complexity_classifier.cpp" "tests/CMakeFiles/vbr_tests.dir/test_complexity_classifier.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_complexity_classifier.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/vbr_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/vbr_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_encoder.cpp" "tests/CMakeFiles/vbr_tests.dir/test_encoder.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_encoder.cpp.o.d"
  "/root/repo/tests/test_error_model.cpp" "tests/CMakeFiles/vbr_tests.dir/test_error_model.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_error_model.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/vbr_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/vbr_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/vbr_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_inner_controller.cpp" "tests/CMakeFiles/vbr_tests.dir/test_inner_controller.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_inner_controller.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/vbr_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interactions.cpp" "tests/CMakeFiles/vbr_tests.dir/test_interactions.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_interactions.cpp.o.d"
  "/root/repo/tests/test_manifest.cpp" "tests/CMakeFiles/vbr_tests.dir/test_manifest.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_manifest.cpp.o.d"
  "/root/repo/tests/test_more_schemes.cpp" "tests/CMakeFiles/vbr_tests.dir/test_more_schemes.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_more_schemes.cpp.o.d"
  "/root/repo/tests/test_mpc.cpp" "tests/CMakeFiles/vbr_tests.dir/test_mpc.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_mpc.cpp.o.d"
  "/root/repo/tests/test_multi_client.cpp" "tests/CMakeFiles/vbr_tests.dir/test_multi_client.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_multi_client.cpp.o.d"
  "/root/repo/tests/test_outer_controller.cpp" "tests/CMakeFiles/vbr_tests.dir/test_outer_controller.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_outer_controller.cpp.o.d"
  "/root/repo/tests/test_panda_cq.cpp" "tests/CMakeFiles/vbr_tests.dir/test_panda_cq.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_panda_cq.cpp.o.d"
  "/root/repo/tests/test_pid_controller.cpp" "tests/CMakeFiles/vbr_tests.dir/test_pid_controller.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_pid_controller.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/vbr_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_qoe.cpp" "tests/CMakeFiles/vbr_tests.dir/test_qoe.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_qoe.cpp.o.d"
  "/root/repo/tests/test_quality_model.cpp" "tests/CMakeFiles/vbr_tests.dir/test_quality_model.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_quality_model.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/vbr_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/vbr_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_scene_model.cpp" "tests/CMakeFiles/vbr_tests.dir/test_scene_model.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_scene_model.cpp.o.d"
  "/root/repo/tests/test_scheme_common.cpp" "tests/CMakeFiles/vbr_tests.dir/test_scheme_common.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_scheme_common.cpp.o.d"
  "/root/repo/tests/test_session.cpp" "tests/CMakeFiles/vbr_tests.dir/test_session.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_session.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/vbr_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/vbr_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_gen.cpp" "tests/CMakeFiles/vbr_tests.dir/test_trace_gen.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_trace_gen.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/vbr_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_track_video.cpp" "tests/CMakeFiles/vbr_tests.dir/test_track_video.cpp.o" "gcc" "tests/CMakeFiles/vbr_tests.dir/test_track_video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/CMakeFiles/vbr_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
