# Empty dependencies file for vbr_tests.
# This may be replaced when dependencies are built.
