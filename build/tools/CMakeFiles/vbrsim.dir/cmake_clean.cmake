file(REMOVE_RECURSE
  "CMakeFiles/vbrsim.dir/vbrsim.cpp.o"
  "CMakeFiles/vbrsim.dir/vbrsim.cpp.o.d"
  "vbrsim"
  "vbrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
