# Empty compiler generated dependencies file for vbrsim.
# This may be replaced when dependencies are built.
