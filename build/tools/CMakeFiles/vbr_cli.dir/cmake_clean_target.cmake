file(REMOVE_RECURSE
  "libvbr_cli.a"
)
