file(REMOVE_RECURSE
  "CMakeFiles/vbr_cli.dir/cli_args.cpp.o"
  "CMakeFiles/vbr_cli.dir/cli_args.cpp.o.d"
  "libvbr_cli.a"
  "libvbr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
