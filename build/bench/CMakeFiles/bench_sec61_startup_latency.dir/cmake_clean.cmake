file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_startup_latency.dir/bench_sec61_startup_latency.cpp.o"
  "CMakeFiles/bench_sec61_startup_latency.dir/bench_sec61_startup_latency.cpp.o.d"
  "bench_sec61_startup_latency"
  "bench_sec61_startup_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_startup_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
