# Empty dependencies file for bench_sec61_startup_latency.
# This may be replaced when dependencies are built.
