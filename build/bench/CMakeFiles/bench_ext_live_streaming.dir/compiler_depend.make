# Empty compiler generated dependencies file for bench_ext_live_streaming.
# This may be replaced when dependencies are built.
