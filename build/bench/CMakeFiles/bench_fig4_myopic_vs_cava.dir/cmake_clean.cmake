file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_myopic_vs_cava.dir/bench_fig4_myopic_vs_cava.cpp.o"
  "CMakeFiles/bench_fig4_myopic_vs_cava.dir/bench_fig4_myopic_vs_cava.cpp.o.d"
  "bench_fig4_myopic_vs_cava"
  "bench_fig4_myopic_vs_cava.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_myopic_vs_cava.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
