# Empty compiler generated dependencies file for bench_fig4_myopic_vs_cava.
# This may be replaced when dependencies are built.
