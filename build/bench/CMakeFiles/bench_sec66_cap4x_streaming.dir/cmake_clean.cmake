file(REMOVE_RECURSE
  "CMakeFiles/bench_sec66_cap4x_streaming.dir/bench_sec66_cap4x_streaming.cpp.o"
  "CMakeFiles/bench_sec66_cap4x_streaming.dir/bench_sec66_cap4x_streaming.cpp.o.d"
  "bench_sec66_cap4x_streaming"
  "bench_sec66_cap4x_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec66_cap4x_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
