# Empty compiler generated dependencies file for bench_sec66_cap4x_streaming.
# This may be replaced when dependencies are built.
