# Empty dependencies file for bench_ext_all_schemes.
# This may be replaced when dependencies are built.
