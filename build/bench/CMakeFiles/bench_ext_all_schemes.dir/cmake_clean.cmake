file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_all_schemes.dir/bench_ext_all_schemes.cpp.o"
  "CMakeFiles/bench_ext_all_schemes.dir/bench_ext_all_schemes.cpp.o.d"
  "bench_ext_all_schemes"
  "bench_ext_all_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_all_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
