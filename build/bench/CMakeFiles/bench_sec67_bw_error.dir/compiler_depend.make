# Empty compiler generated dependencies file for bench_sec67_bw_error.
# This may be replaced when dependencies are built.
