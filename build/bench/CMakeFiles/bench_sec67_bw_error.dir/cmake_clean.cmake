file(REMOVE_RECURSE
  "CMakeFiles/bench_sec67_bw_error.dir/bench_sec67_bw_error.cpp.o"
  "CMakeFiles/bench_sec67_bw_error.dir/bench_sec67_bw_error.cpp.o.d"
  "bench_sec67_bw_error"
  "bench_sec67_bw_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec67_bw_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
