# Empty dependencies file for bench_ext_rtt_and_tuning.
# This may be replaced when dependencies are built.
