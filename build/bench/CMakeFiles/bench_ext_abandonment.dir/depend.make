# Empty dependencies file for bench_ext_abandonment.
# This may be replaced when dependencies are built.
