file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_abandonment.dir/bench_ext_abandonment.cpp.o"
  "CMakeFiles/bench_ext_abandonment.dir/bench_ext_abandonment.cpp.o.d"
  "bench_ext_abandonment"
  "bench_ext_abandonment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_abandonment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
