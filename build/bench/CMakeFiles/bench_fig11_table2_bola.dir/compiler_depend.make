# Empty compiler generated dependencies file for bench_fig11_table2_bola.
# This may be replaced when dependencies are built.
