file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_table2_bola.dir/bench_fig11_table2_bola.cpp.o"
  "CMakeFiles/bench_fig11_table2_bola.dir/bench_fig11_table2_bola.cpp.o.d"
  "bench_fig11_table2_bola"
  "bench_fig11_table2_bola.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_table2_bola.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
