
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_fault_sweep.cpp" "bench/CMakeFiles/bench_ext_fault_sweep.dir/bench_ext_fault_sweep.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_fault_sweep.dir/bench_ext_fault_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_tune.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
