# Empty dependencies file for bench_ext_fault_sweep.
# This may be replaced when dependencies are built.
