file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_cbr_vs_vbr.dir/bench_intro_cbr_vs_vbr.cpp.o"
  "CMakeFiles/bench_intro_cbr_vs_vbr.dir/bench_intro_cbr_vs_vbr.cpp.o.d"
  "bench_intro_cbr_vs_vbr"
  "bench_intro_cbr_vs_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_cbr_vs_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
