# Empty compiler generated dependencies file for bench_intro_cbr_vs_vbr.
# This may be replaced when dependencies are built.
