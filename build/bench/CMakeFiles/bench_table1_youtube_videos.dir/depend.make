# Empty dependencies file for bench_table1_youtube_videos.
# This may be replaced when dependencies are built.
