file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_si_ti_quartiles.dir/bench_fig2_si_ti_quartiles.cpp.o"
  "CMakeFiles/bench_fig2_si_ti_quartiles.dir/bench_fig2_si_ti_quartiles.cpp.o.d"
  "bench_fig2_si_ti_quartiles"
  "bench_fig2_si_ti_quartiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_si_ti_quartiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
