# Empty dependencies file for bench_fig2_si_ti_quartiles.
# This may be replaced when dependencies are built.
