# Empty dependencies file for bench_fig9_q13_all_quality.
# This may be replaced when dependencies are built.
