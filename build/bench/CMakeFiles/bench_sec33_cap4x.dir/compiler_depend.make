# Empty compiler generated dependencies file for bench_sec33_cap4x.
# This may be replaced when dependencies are built.
