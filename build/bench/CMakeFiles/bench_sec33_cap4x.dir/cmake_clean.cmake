file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_cap4x.dir/bench_sec33_cap4x.cpp.o"
  "CMakeFiles/bench_sec33_cap4x.dir/bench_sec33_cap4x.cpp.o.d"
  "bench_sec33_cap4x"
  "bench_sec33_cap4x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_cap4x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
