file(REMOVE_RECURSE
  "CMakeFiles/bench_sec65_codec.dir/bench_sec65_codec.cpp.o"
  "CMakeFiles/bench_sec65_codec.dir/bench_sec65_codec.cpp.o.d"
  "bench_sec65_codec"
  "bench_sec65_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
