# Empty dependencies file for bench_fig8_scheme_cdfs.
# This may be replaced when dependencies are built.
