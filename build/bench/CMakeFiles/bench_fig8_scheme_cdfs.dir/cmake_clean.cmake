file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scheme_cdfs.dir/bench_fig8_scheme_cdfs.cpp.o"
  "CMakeFiles/bench_fig8_scheme_cdfs.dir/bench_fig8_scheme_cdfs.cpp.o.d"
  "bench_fig8_scheme_cdfs"
  "bench_fig8_scheme_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scheme_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
