file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_decision_overhead.dir/bench_micro_decision_overhead.cpp.o"
  "CMakeFiles/bench_micro_decision_overhead.dir/bench_micro_decision_overhead.cpp.o.d"
  "bench_micro_decision_overhead"
  "bench_micro_decision_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_decision_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
