# Empty dependencies file for bench_micro_decision_overhead.
# This may be replaced when dependencies are built.
