# Empty dependencies file for bench_sec31_crosstrack_corr.
# This may be replaced when dependencies are built.
