file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_crosstrack_corr.dir/bench_sec31_crosstrack_corr.cpp.o"
  "CMakeFiles/bench_sec31_crosstrack_corr.dir/bench_sec31_crosstrack_corr.cpp.o.d"
  "bench_sec31_crosstrack_corr"
  "bench_sec31_crosstrack_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_crosstrack_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
