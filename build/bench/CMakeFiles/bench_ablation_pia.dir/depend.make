# Empty dependencies file for bench_ablation_pia.
# This may be replaced when dependencies are built.
