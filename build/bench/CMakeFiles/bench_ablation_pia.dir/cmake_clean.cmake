file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pia.dir/bench_ablation_pia.cpp.o"
  "CMakeFiles/bench_ablation_pia.dir/bench_ablation_pia.cpp.o.d"
  "bench_ablation_pia"
  "bench_ablation_pia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
