# Empty dependencies file for bench_sec2_dataset_stats.
# This may be replaced when dependencies are built.
