# Empty compiler generated dependencies file for bench_fig7_inner_window.
# This may be replaced when dependencies are built.
