# Empty dependencies file for bench_ablation_pid_gains.
# This may be replaced when dependencies are built.
