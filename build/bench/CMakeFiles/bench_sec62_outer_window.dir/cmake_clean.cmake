file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_outer_window.dir/bench_sec62_outer_window.cpp.o"
  "CMakeFiles/bench_sec62_outer_window.dir/bench_sec62_outer_window.cpp.o.d"
  "bench_sec62_outer_window"
  "bench_sec62_outer_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_outer_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
