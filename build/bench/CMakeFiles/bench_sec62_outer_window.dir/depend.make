# Empty dependencies file for bench_sec62_outer_window.
# This may be replaced when dependencies are built.
