file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_controller_traces.dir/bench_fig6_controller_traces.cpp.o"
  "CMakeFiles/bench_fig6_controller_traces.dir/bench_fig6_controller_traces.cpp.o.d"
  "bench_fig6_controller_traces"
  "bench_fig6_controller_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_controller_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
