
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cava.cpp" "src/CMakeFiles/vbr_core.dir/core/cava.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/cava.cpp.o.d"
  "/root/repo/src/core/complexity_classifier.cpp" "src/CMakeFiles/vbr_core.dir/core/complexity_classifier.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/complexity_classifier.cpp.o.d"
  "/root/repo/src/core/inner_controller.cpp" "src/CMakeFiles/vbr_core.dir/core/inner_controller.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/inner_controller.cpp.o.d"
  "/root/repo/src/core/outer_controller.cpp" "src/CMakeFiles/vbr_core.dir/core/outer_controller.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/outer_controller.cpp.o.d"
  "/root/repo/src/core/pia.cpp" "src/CMakeFiles/vbr_core.dir/core/pia.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/pia.cpp.o.d"
  "/root/repo/src/core/pid_controller.cpp" "src/CMakeFiles/vbr_core.dir/core/pid_controller.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/pid_controller.cpp.o.d"
  "/root/repo/src/core/si_ti_classifier.cpp" "src/CMakeFiles/vbr_core.dir/core/si_ti_classifier.cpp.o" "gcc" "src/CMakeFiles/vbr_core.dir/core/si_ti_classifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbr_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
