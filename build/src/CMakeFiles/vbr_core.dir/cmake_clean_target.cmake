file(REMOVE_RECURSE
  "libvbr_core.a"
)
