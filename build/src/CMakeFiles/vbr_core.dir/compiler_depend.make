# Empty compiler generated dependencies file for vbr_core.
# This may be replaced when dependencies are built.
