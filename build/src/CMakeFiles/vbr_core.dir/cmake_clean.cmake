file(REMOVE_RECURSE
  "CMakeFiles/vbr_core.dir/core/cava.cpp.o"
  "CMakeFiles/vbr_core.dir/core/cava.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/complexity_classifier.cpp.o"
  "CMakeFiles/vbr_core.dir/core/complexity_classifier.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/inner_controller.cpp.o"
  "CMakeFiles/vbr_core.dir/core/inner_controller.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/outer_controller.cpp.o"
  "CMakeFiles/vbr_core.dir/core/outer_controller.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/pia.cpp.o"
  "CMakeFiles/vbr_core.dir/core/pia.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/pid_controller.cpp.o"
  "CMakeFiles/vbr_core.dir/core/pid_controller.cpp.o.d"
  "CMakeFiles/vbr_core.dir/core/si_ti_classifier.cpp.o"
  "CMakeFiles/vbr_core.dir/core/si_ti_classifier.cpp.o.d"
  "libvbr_core.a"
  "libvbr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
