file(REMOVE_RECURSE
  "CMakeFiles/vbr_net.dir/net/bandwidth_estimator.cpp.o"
  "CMakeFiles/vbr_net.dir/net/bandwidth_estimator.cpp.o.d"
  "CMakeFiles/vbr_net.dir/net/error_model.cpp.o"
  "CMakeFiles/vbr_net.dir/net/error_model.cpp.o.d"
  "CMakeFiles/vbr_net.dir/net/fault_model.cpp.o"
  "CMakeFiles/vbr_net.dir/net/fault_model.cpp.o.d"
  "CMakeFiles/vbr_net.dir/net/trace.cpp.o"
  "CMakeFiles/vbr_net.dir/net/trace.cpp.o.d"
  "CMakeFiles/vbr_net.dir/net/trace_gen.cpp.o"
  "CMakeFiles/vbr_net.dir/net/trace_gen.cpp.o.d"
  "CMakeFiles/vbr_net.dir/net/trace_io.cpp.o"
  "CMakeFiles/vbr_net.dir/net/trace_io.cpp.o.d"
  "libvbr_net.a"
  "libvbr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
