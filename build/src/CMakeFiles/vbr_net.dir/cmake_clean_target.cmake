file(REMOVE_RECURSE
  "libvbr_net.a"
)
