
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_estimator.cpp" "src/CMakeFiles/vbr_net.dir/net/bandwidth_estimator.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/bandwidth_estimator.cpp.o.d"
  "/root/repo/src/net/error_model.cpp" "src/CMakeFiles/vbr_net.dir/net/error_model.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/error_model.cpp.o.d"
  "/root/repo/src/net/fault_model.cpp" "src/CMakeFiles/vbr_net.dir/net/fault_model.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/fault_model.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/vbr_net.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/trace.cpp.o.d"
  "/root/repo/src/net/trace_gen.cpp" "src/CMakeFiles/vbr_net.dir/net/trace_gen.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/trace_gen.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/CMakeFiles/vbr_net.dir/net/trace_io.cpp.o" "gcc" "src/CMakeFiles/vbr_net.dir/net/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
