# Empty dependencies file for vbr_net.
# This may be replaced when dependencies are built.
