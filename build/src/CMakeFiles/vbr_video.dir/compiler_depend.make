# Empty compiler generated dependencies file for vbr_video.
# This may be replaced when dependencies are built.
