file(REMOVE_RECURSE
  "libvbr_video.a"
)
