
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/dataset.cpp" "src/CMakeFiles/vbr_video.dir/video/dataset.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/dataset.cpp.o.d"
  "/root/repo/src/video/encoder.cpp" "src/CMakeFiles/vbr_video.dir/video/encoder.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/encoder.cpp.o.d"
  "/root/repo/src/video/manifest.cpp" "src/CMakeFiles/vbr_video.dir/video/manifest.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/manifest.cpp.o.d"
  "/root/repo/src/video/quality_model.cpp" "src/CMakeFiles/vbr_video.dir/video/quality_model.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/quality_model.cpp.o.d"
  "/root/repo/src/video/scene_model.cpp" "src/CMakeFiles/vbr_video.dir/video/scene_model.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/scene_model.cpp.o.d"
  "/root/repo/src/video/track.cpp" "src/CMakeFiles/vbr_video.dir/video/track.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/track.cpp.o.d"
  "/root/repo/src/video/video.cpp" "src/CMakeFiles/vbr_video.dir/video/video.cpp.o" "gcc" "src/CMakeFiles/vbr_video.dir/video/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
