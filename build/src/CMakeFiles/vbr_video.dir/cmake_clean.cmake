file(REMOVE_RECURSE
  "CMakeFiles/vbr_video.dir/video/dataset.cpp.o"
  "CMakeFiles/vbr_video.dir/video/dataset.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/encoder.cpp.o"
  "CMakeFiles/vbr_video.dir/video/encoder.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/manifest.cpp.o"
  "CMakeFiles/vbr_video.dir/video/manifest.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/quality_model.cpp.o"
  "CMakeFiles/vbr_video.dir/video/quality_model.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/scene_model.cpp.o"
  "CMakeFiles/vbr_video.dir/video/scene_model.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/track.cpp.o"
  "CMakeFiles/vbr_video.dir/video/track.cpp.o.d"
  "CMakeFiles/vbr_video.dir/video/video.cpp.o"
  "CMakeFiles/vbr_video.dir/video/video.cpp.o.d"
  "libvbr_video.a"
  "libvbr_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
