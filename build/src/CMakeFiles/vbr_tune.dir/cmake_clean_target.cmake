file(REMOVE_RECURSE
  "libvbr_tune.a"
)
