file(REMOVE_RECURSE
  "CMakeFiles/vbr_tune.dir/tune/autotune.cpp.o"
  "CMakeFiles/vbr_tune.dir/tune/autotune.cpp.o.d"
  "libvbr_tune.a"
  "libvbr_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
