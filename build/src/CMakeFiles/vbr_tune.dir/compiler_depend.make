# Empty compiler generated dependencies file for vbr_tune.
# This may be replaced when dependencies are built.
