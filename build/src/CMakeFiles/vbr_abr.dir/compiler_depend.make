# Empty compiler generated dependencies file for vbr_abr.
# This may be replaced when dependencies are built.
