
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/bba.cpp" "src/CMakeFiles/vbr_abr.dir/abr/bba.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/bba.cpp.o.d"
  "/root/repo/src/abr/bola.cpp" "src/CMakeFiles/vbr_abr.dir/abr/bola.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/bola.cpp.o.d"
  "/root/repo/src/abr/festive.cpp" "src/CMakeFiles/vbr_abr.dir/abr/festive.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/festive.cpp.o.d"
  "/root/repo/src/abr/mpc.cpp" "src/CMakeFiles/vbr_abr.dir/abr/mpc.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/mpc.cpp.o.d"
  "/root/repo/src/abr/panda_cq.cpp" "src/CMakeFiles/vbr_abr.dir/abr/panda_cq.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/panda_cq.cpp.o.d"
  "/root/repo/src/abr/rba.cpp" "src/CMakeFiles/vbr_abr.dir/abr/rba.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/rba.cpp.o.d"
  "/root/repo/src/abr/scheme.cpp" "src/CMakeFiles/vbr_abr.dir/abr/scheme.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/scheme.cpp.o.d"
  "/root/repo/src/abr/throughput_rule.cpp" "src/CMakeFiles/vbr_abr.dir/abr/throughput_rule.cpp.o" "gcc" "src/CMakeFiles/vbr_abr.dir/abr/throughput_rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
