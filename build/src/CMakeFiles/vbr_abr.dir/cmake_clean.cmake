file(REMOVE_RECURSE
  "CMakeFiles/vbr_abr.dir/abr/bba.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/bba.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/bola.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/bola.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/festive.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/festive.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/mpc.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/mpc.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/panda_cq.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/panda_cq.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/rba.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/rba.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/scheme.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/scheme.cpp.o.d"
  "CMakeFiles/vbr_abr.dir/abr/throughput_rule.cpp.o"
  "CMakeFiles/vbr_abr.dir/abr/throughput_rule.cpp.o.d"
  "libvbr_abr.a"
  "libvbr_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
