file(REMOVE_RECURSE
  "libvbr_abr.a"
)
