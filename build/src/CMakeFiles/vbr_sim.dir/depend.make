# Empty dependencies file for vbr_sim.
# This may be replaced when dependencies are built.
