file(REMOVE_RECURSE
  "libvbr_sim.a"
)
