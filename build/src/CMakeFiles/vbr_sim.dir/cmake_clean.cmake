file(REMOVE_RECURSE
  "CMakeFiles/vbr_sim.dir/sim/buffer.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/buffer.cpp.o.d"
  "CMakeFiles/vbr_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/vbr_sim.dir/sim/live_session.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/live_session.cpp.o.d"
  "CMakeFiles/vbr_sim.dir/sim/multi_client.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/multi_client.cpp.o.d"
  "CMakeFiles/vbr_sim.dir/sim/retry.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/retry.cpp.o.d"
  "CMakeFiles/vbr_sim.dir/sim/session.cpp.o"
  "CMakeFiles/vbr_sim.dir/sim/session.cpp.o.d"
  "libvbr_sim.a"
  "libvbr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
