
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/buffer.cpp" "src/CMakeFiles/vbr_sim.dir/sim/buffer.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/buffer.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/vbr_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/live_session.cpp" "src/CMakeFiles/vbr_sim.dir/sim/live_session.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/live_session.cpp.o.d"
  "/root/repo/src/sim/multi_client.cpp" "src/CMakeFiles/vbr_sim.dir/sim/multi_client.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/multi_client.cpp.o.d"
  "/root/repo/src/sim/retry.cpp" "src/CMakeFiles/vbr_sim.dir/sim/retry.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/retry.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/CMakeFiles/vbr_sim.dir/sim/session.cpp.o" "gcc" "src/CMakeFiles/vbr_sim.dir/sim/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vbr_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_video.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vbr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
