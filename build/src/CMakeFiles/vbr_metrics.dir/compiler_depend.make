# Empty compiler generated dependencies file for vbr_metrics.
# This may be replaced when dependencies are built.
