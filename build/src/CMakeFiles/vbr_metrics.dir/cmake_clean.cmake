file(REMOVE_RECURSE
  "CMakeFiles/vbr_metrics.dir/metrics/qoe.cpp.o"
  "CMakeFiles/vbr_metrics.dir/metrics/qoe.cpp.o.d"
  "CMakeFiles/vbr_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/vbr_metrics.dir/metrics/report.cpp.o.d"
  "CMakeFiles/vbr_metrics.dir/metrics/stats.cpp.o"
  "CMakeFiles/vbr_metrics.dir/metrics/stats.cpp.o.d"
  "libvbr_metrics.a"
  "libvbr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
