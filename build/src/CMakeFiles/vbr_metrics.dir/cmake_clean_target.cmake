file(REMOVE_RECURSE
  "libvbr_metrics.a"
)
